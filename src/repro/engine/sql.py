"""SQL rendering and parsing for the benchmark query class.

The benchmark's queries are exactly the class the paper evaluates:

    SELECT COUNT(*) FROM t1, t2, ...
    WHERE t1.k = t2.fk AND ... AND t.a <op> literal AND ...

with conjunctive equi-joins and range/equality/IN filters.  This
module renders :class:`repro.engine.query.Query` objects to that SQL
dialect and parses it back — which is how workloads are exported to
and imported from ``.sql`` files, mirroring the paper's released
query sets.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.engine.catalog import JoinEdge, JoinGraph
from repro.engine.predicates import Predicate
from repro.engine.query import Query


class SqlParseError(ValueError):
    """Raised when a query string is outside the benchmark dialect."""


def query_to_sql(query: Query) -> str:
    """Render a query in the benchmark SQL dialect (deterministic)."""
    tables = ", ".join(sorted(query.tables))
    clauses = [
        f"{e.left}.{e.left_column} = {e.right}.{e.right_column}"
        for e in query.join_edges
    ]
    clauses.extend(_predicate_sql(p) for p in query.predicates)
    where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
    return f"SELECT COUNT(*) FROM {tables}{where};"


def _predicate_sql(predicate: Predicate) -> str:
    if predicate.op == "between":
        low, high = predicate.value  # type: ignore[misc]
        return (
            f"{predicate.table}.{predicate.column} "
            f"BETWEEN {_literal(low)} AND {_literal(high)}"
        )
    if predicate.op == "in":
        inner = ", ".join(_literal(v) for v in predicate.value)  # type: ignore[union-attr]
        return f"{predicate.table}.{predicate.column} IN ({inner})"
    return f"{predicate.table}.{predicate.column} {predicate.op} {_literal(predicate.value)}"


def _literal(value) -> str:
    number = float(value)
    if number == int(number):
        return str(int(number))
    return repr(number)


# -- parsing ------------------------------------------------------------------

_TOKEN_PATTERN = re.compile(
    r"\s*(?:"
    # Scientific notation is part of the dialect: float predicate values
    # render through repr(), which emits forms like ``1e-07`` that the
    # parser must round-trip (and SQLite accepts verbatim).
    r"(?P<number>-?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)"
    r"|(?P<word>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<symbol><=|>=|<>|!=|[(),.*=<>;])"
    r")"
)

_KEYWORDS = {"select", "count", "from", "where", "and", "between", "in"}


@dataclass(frozen=True)
class _Token:
    kind: str  # "number" | "word" | "symbol"
    text: str

    @property
    def lowered(self) -> str:
        return self.text.lower()


def _tokenize(sql: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(sql):
        match = _TOKEN_PATTERN.match(sql, position)
        if match is None:
            remainder = sql[position:].strip()
            if not remainder:
                break
            raise SqlParseError(f"unexpected input at: {remainder[:25]!r}")
        position = match.end()
        for kind in ("number", "word", "symbol"):
            text = match.group(kind)
            if text is not None:
                tokens.append(_Token(kind, text))
                break
    return tokens


class _Parser:
    """Recursive-descent parser for the benchmark dialect."""

    def __init__(self, tokens: list[_Token]):
        self._tokens = tokens
        self._position = 0

    # -- token plumbing -----------------------------------------------------

    def _peek(self) -> _Token | None:
        if self._position < len(self._tokens):
            return self._tokens[self._position]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise SqlParseError("unexpected end of query")
        self._position += 1
        return token

    def _expect_word(self, keyword: str) -> None:
        token = self._next()
        if token.kind != "word" or token.lowered != keyword:
            raise SqlParseError(f"expected {keyword.upper()!r}, found {token.text!r}")

    def _expect_symbol(self, symbol: str) -> None:
        token = self._next()
        if token.kind != "symbol" or token.text != symbol:
            raise SqlParseError(f"expected {symbol!r}, found {token.text!r}")

    def _accept_symbol(self, symbol: str) -> bool:
        token = self._peek()
        if token is not None and token.kind == "symbol" and token.text == symbol:
            self._position += 1
            return True
        return False

    def _accept_word(self, keyword: str) -> bool:
        token = self._peek()
        if token is not None and token.kind == "word" and token.lowered == keyword:
            self._position += 1
            return True
        return False

    # -- grammar --------------------------------------------------------------

    def parse(self) -> tuple[list[str], list[tuple], list[Predicate]]:
        self._expect_word("select")
        self._expect_word("count")
        self._expect_symbol("(")
        self._expect_symbol("*")
        self._expect_symbol(")")
        self._expect_word("from")
        tables = [self._identifier()]
        while self._accept_symbol(","):
            tables.append(self._identifier())

        joins: list[tuple] = []
        predicates: list[Predicate] = []
        if self._accept_word("where"):
            self._conjunct(joins, predicates)
            while self._accept_word("and"):
                self._conjunct(joins, predicates)
        self._accept_symbol(";")
        if self._peek() is not None:
            raise SqlParseError(f"trailing input: {self._peek().text!r}")
        return tables, joins, predicates

    def _identifier(self) -> str:
        token = self._next()
        if token.kind != "word" or token.lowered in _KEYWORDS:
            raise SqlParseError(f"expected identifier, found {token.text!r}")
        return token.text

    def _column_ref(self) -> tuple[str, str]:
        table = self._identifier()
        self._expect_symbol(".")
        return table, self._column_name()

    def _column_name(self) -> str:
        # After a ``.`` the next word is always a column name, so
        # keyword collisions (STATS has a ``tags.Count`` column) are
        # fine here — only bare identifiers reject keywords.
        token = self._next()
        if token.kind != "word":
            raise SqlParseError(f"expected column name, found {token.text!r}")
        return token.text

    def _number(self) -> float:
        token = self._next()
        if token.kind != "number":
            raise SqlParseError(f"expected a numeric literal, found {token.text!r}")
        return float(token.text)

    def _conjunct(self, joins: list[tuple], predicates: list[Predicate]) -> None:
        table, column = self._column_ref()
        if self._accept_word("between"):
            low = self._number()
            self._expect_word("and")
            high = self._number()
            predicates.append(Predicate(table, column, "between", (low, high)))
            return
        if self._accept_word("in"):
            self._expect_symbol("(")
            values = [self._number()]
            while self._accept_symbol(","):
                values.append(self._number())
            self._expect_symbol(")")
            predicates.append(Predicate(table, column, "in", tuple(values)))
            return
        operator = self._next()
        if operator.kind != "symbol" or operator.text not in ("=", "<", "<=", ">", ">="):
            raise SqlParseError(f"unsupported operator {operator.text!r}")
        token = self._peek()
        if token is not None and token.kind == "word":
            # column = column  ->  join condition
            if operator.text != "=":
                raise SqlParseError("non-equi joins are outside the benchmark dialect")
            other_table, other_column = self._column_ref()
            joins.append((table, column, other_table, other_column))
            return
        predicates.append(Predicate(table, column, operator.text, self._number()))


def parse_query(
    sql: str,
    join_graph: JoinGraph | None = None,
    name: str = "",
) -> Query:
    """Parse benchmark-dialect SQL into a :class:`Query`.

    When a ``join_graph`` is given, each join condition is matched
    against the schema's edges (recovering PK-FK orientation);
    otherwise edges default to many-to-many orientation as written.
    """
    tables, joins, predicates = _Parser(_tokenize(sql)).parse()
    edges = []
    for left, left_column, right, right_column in joins:
        edges.append(
            _resolve_edge(join_graph, left, left_column, right, right_column)
        )
    return Query(
        tables=frozenset(tables),
        join_edges=tuple(edges),
        predicates=tuple(predicates),
        name=name,
    )


def _resolve_edge(
    join_graph: JoinGraph | None,
    left: str,
    left_column: str,
    right: str,
    right_column: str,
) -> JoinEdge:
    if join_graph is not None:
        written = {(left, left_column), (right, right_column)}
        for edge in join_graph.edges:
            schema_pair = {
                (edge.left, edge.left_column),
                (edge.right, edge.right_column),
            }
            if schema_pair == written:
                return edge
    return JoinEdge(left, left_column, right, right_column, one_to_many=False)
