"""Value types and conventions shared across the engine.

All column data is stored in numpy arrays.  Two logical column kinds
exist, mirroring the paper's "numerical / categorical (n./c.)"
attribute model:

- ``INT``:    integer-valued (ids, counts, timestamps, and categorical
              attributes whose values are mapped to integers),
- ``FLOAT``:  continuous numerical attributes.

NULLs are represented by a separate boolean mask per column (``True``
means the value is NULL); the backing value under a NULL is undefined
and must never be read without consulting the mask.
"""

from __future__ import annotations

import enum

import numpy as np


class ColumnKind(enum.Enum):
    """Logical kind of a column."""

    INT = "int"
    FLOAT = "float"

    @property
    def dtype(self) -> np.dtype:
        """numpy dtype used to store values of this kind."""
        if self is ColumnKind.INT:
            return np.dtype(np.int64)
        return np.dtype(np.float64)


#: Number of bytes the cost model assumes one tuple of width ``w``
#: columns occupies on disk (used to convert row counts to page counts).
BYTES_PER_VALUE = 8

#: Page size assumed by the cost model, in bytes (PostgreSQL default).
PAGE_SIZE = 8192


def pages_for(rows: float, width: int) -> float:
    """Number of disk pages a relation of ``rows`` tuples of ``width``
    columns occupies under the engine's storage assumptions.

    Always at least one page, matching PostgreSQL's convention.
    """
    bytes_total = max(rows, 0.0) * max(width, 1) * BYTES_PER_VALUE
    return max(1.0, bytes_total / PAGE_SIZE)
