"""Query representation: join edges plus canonical-form predicates.

A :class:`Query` is an acyclic multi-table equi-join with conjunctive
range/equality filters — exactly the query class of STATS-CEB and
JOB-LIGHT.  Sub-plan queries (Section 4.2 of the paper) are produced
with :meth:`Query.subquery`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.catalog import JoinEdge
from repro.engine.predicates import Predicate


@dataclass(frozen=True)
class Query:
    """One benchmark query.

    Attributes:
        tables: the joined tables.
        join_edges: equi-join conditions; must connect ``tables`` into
            an acyclic (tree-shaped) join graph.
        predicates: filter conjuncts, each naming one of ``tables``.
        name: optional workload identifier (e.g. ``"stats-ceb-q57"``).
    """

    tables: frozenset[str]
    join_edges: tuple[JoinEdge, ...] = ()
    predicates: tuple[Predicate, ...] = ()
    name: str = ""

    def __post_init__(self) -> None:
        for edge in self.join_edges:
            if edge.left not in self.tables or edge.right not in self.tables:
                raise ValueError(f"join edge {edge} references a table outside {set(self.tables)}")
        for predicate in self.predicates:
            if predicate.table not in self.tables:
                raise ValueError(
                    f"predicate on {predicate.table!r} but query joins {set(self.tables)}"
                )
        if len(self.join_edges) > len(self.tables) - 1:
            raise ValueError("cyclic join graphs are outside the benchmark query class")
        if len(self.tables) > 1 and len(self.join_edges) < len(self.tables) - 1:
            raise ValueError("join graph does not connect all tables")

    # -- accessors ---------------------------------------------------------

    @property
    def num_tables(self) -> int:
        return len(self.tables)

    def predicates_on(self, table: str) -> tuple[Predicate, ...]:
        return tuple(p for p in self.predicates if p.table == table)

    @property
    def num_predicates(self) -> int:
        return len(self.predicates)

    def edges_within(self, tables: frozenset[str]) -> tuple[JoinEdge, ...]:
        return tuple(
            edge
            for edge in self.join_edges
            if edge.left in tables and edge.right in tables
        )

    # -- sub-plan queries ----------------------------------------------------

    def subquery(self, tables: frozenset[str]) -> "Query":
        """The sub-plan query restricted to ``tables``.

        ``tables`` must be a connected subset of this query's join
        graph; the sub-query keeps the join edges and predicates that
        fall entirely within the subset.
        """
        if not tables <= self.tables:
            raise ValueError(f"{set(tables)} is not a subset of {set(self.tables)}")
        return Query(
            tables=tables,
            join_edges=self.edges_within(tables),
            predicates=tuple(p for p in self.predicates if p.table in tables),
            name=self.name,
        )

    def key(self) -> tuple:
        """Hashable identity of the query's *semantics* (ignores name)."""
        return (
            tuple(sorted(self.tables)),
            tuple(
                sorted(
                    (e.left, e.left_column, e.right, e.right_column)
                    for e in self.join_edges
                )
            ),
            tuple(
                sorted(
                    (p.table, p.column, p.op, p.value if not isinstance(p.value, tuple) else tuple(p.value))
                    for p in self.predicates
                )
            ),
        )

    def to_sql(self) -> str:
        """SQL-ish rendering for reports and debugging."""
        tables = ", ".join(sorted(self.tables))
        clauses = [
            f"{e.left}.{e.left_column} = {e.right}.{e.right_column}"
            for e in self.join_edges
        ]
        clauses.extend(p.to_sql() for p in self.predicates)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        return f"SELECT COUNT(*) FROM {tables}{where}"


@dataclass
class LabeledQuery:
    """A query annotated with its true cardinality (a workload entry)."""

    query: Query
    true_cardinality: int
    sub_plan_true_cards: dict[frozenset[str], int] = field(default_factory=dict)
