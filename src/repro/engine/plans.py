"""Physical plan trees.

A plan node covers a set of tables; its estimated row count is always
looked up from a cardinality mapping (estimated or true), so the same
tree can be costed under either — which is how P-Error is computed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.catalog import JoinEdge
from repro.engine.predicates import Predicate

SCAN_SEQ = "seq_scan"
SCAN_INDEX = "index_scan"
JOIN_HASH = "hash_join"
JOIN_MERGE = "merge_join"
JOIN_INDEX_NL = "index_nl_join"

JOIN_METHODS = (JOIN_HASH, JOIN_MERGE, JOIN_INDEX_NL)

# Codified plan-choice tie-breaking: candidates are totally ordered by
# ``(cost, method_rank, left_mask)``, so equally-cheap plans resolve the
# same way no matter what order they were scored in (Python loop or
# vectorised argmin).  Lower rank wins a cost tie; a smaller left-half
# bitmask breaks method ties across bipartitions.
JOIN_METHOD_RANK = {JOIN_HASH: 0, JOIN_MERGE: 1, JOIN_INDEX_NL: 2}
JOIN_METHOD_BY_RANK = (JOIN_HASH, JOIN_MERGE, JOIN_INDEX_NL)
SCAN_METHOD_RANK = {SCAN_SEQ: 0, SCAN_INDEX: 1}


@dataclass
class PlanNode:
    """Base physical plan node."""

    tables: frozenset[str]

    @property
    def is_scan(self) -> bool:
        return isinstance(self, ScanNode)

    def walk(self):
        """Yield this node and all descendants, pre-order."""
        yield self
        if isinstance(self, JoinNode):
            yield from self.left.walk()
            yield from self.right.walk()

    def describe(self, cards: dict[frozenset[str], float] | None = None, indent: int = 0) -> str:
        """Human-readable plan rendering (EXPLAIN-style)."""
        raise NotImplementedError


@dataclass
class ScanNode(PlanNode):
    """Base-table access: sequential or index scan with filters."""

    table: str = ""
    predicates: tuple[Predicate, ...] = ()
    method: str = SCAN_SEQ
    index_column: str | None = None

    def describe(self, cards=None, indent: int = 0) -> str:
        pad = "  " * indent
        label = "Seq Scan" if self.method == SCAN_SEQ else f"Index Scan ({self.index_column})"
        rows = ""
        if cards is not None and self.tables in cards:
            rows = f" rows={cards[self.tables]:.0f}"
        filters = ""
        if self.predicates:
            filters = "  [" + " AND ".join(p.to_sql() for p in self.predicates) + "]"
        return f"{pad}{label} on {self.table}{rows}{filters}"


@dataclass
class JoinNode(PlanNode):
    """Binary equi-join of two sub-plans on one join edge.

    ``left`` is the outer/probe side, ``right`` the inner/build side
    (for hash joins the build relation; for index-NL the indexed base
    table).
    """

    left: PlanNode = field(default=None)  # type: ignore[assignment]
    right: PlanNode = field(default=None)  # type: ignore[assignment]
    edge: JoinEdge = field(default=None)  # type: ignore[assignment]
    method: str = JOIN_HASH

    def describe(self, cards=None, indent: int = 0) -> str:
        pad = "  " * indent
        label = {
            JOIN_HASH: "Hash Join",
            JOIN_MERGE: "Merge Join",
            JOIN_INDEX_NL: "Index Nested Loop",
        }[self.method]
        rows = ""
        if cards is not None and self.tables in cards:
            rows = f" rows={cards[self.tables]:.0f}"
        condition = (
            f"{self.edge.left}.{self.edge.left_column}"
            f" = {self.edge.right}.{self.edge.right_column}"
        )
        lines = [f"{pad}{label} on ({condition}){rows}"]
        lines.append(self.left.describe(cards, indent + 1))
        lines.append(self.right.describe(cards, indent + 1))
        return "\n".join(lines)


def join_order_signature(plan: PlanNode) -> tuple:
    """A nested-tuple signature of the join order (ignores methods).

    Used by the Figure-2 case study to compare join orders chosen by
    different estimators.
    """
    if isinstance(plan, ScanNode):
        return (plan.table,)
    assert isinstance(plan, JoinNode)
    return (join_order_signature(plan.left), join_order_signature(plan.right))


def plan_methods(plan: PlanNode) -> list[str]:
    """Physical operator names used in the plan, pre-order."""
    methods = []
    for node in plan.walk():
        if isinstance(node, JoinNode):
            methods.append(node.method)
        else:
            assert isinstance(node, ScanNode)
            methods.append(node.method)
    return methods
