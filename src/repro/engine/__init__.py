"""A miniature column-store DBMS used as the PostgreSQL stand-in.

The engine provides exactly what the paper's evaluation platform needs
from PostgreSQL:

- a catalog with a join graph (:mod:`repro.engine.catalog`),
- column-store tables over numpy arrays (:mod:`repro.engine.table`),
- canonical-form selection predicates (:mod:`repro.engine.predicates`),
- ``ANALYZE``-style statistics (:mod:`repro.engine.stats`),
- a PostgreSQL-flavoured cost model (:mod:`repro.engine.cost`),
- a dynamic-programming join-order planner that consumes *injected*
  sub-plan cardinalities (:mod:`repro.engine.planner`), and
- a vectorised executor with genuinely different physical join
  operators (:mod:`repro.engine.executor`).
"""

from repro.engine.catalog import ColumnMeta, JoinEdge, JoinGraph, TableSchema
from repro.engine.database import Database
from repro.engine.executor import ExecutionResult, Executor
from repro.engine.explain import ExplainResult, explain
from repro.engine.planner import Planner
from repro.engine.predicates import Predicate
from repro.engine.query import Query
from repro.engine.sql import parse_query, query_to_sql
from repro.engine.table import Table

__all__ = [
    "ColumnMeta",
    "Database",
    "ExecutionResult",
    "Executor",
    "ExplainResult",
    "JoinEdge",
    "JoinGraph",
    "Planner",
    "Predicate",
    "Query",
    "Table",
    "TableSchema",
    "explain",
    "parse_query",
    "query_to_sql",
]
