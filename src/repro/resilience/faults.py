"""Fault injection for resilience testing.

Deterministic wrappers that make an estimator or executor fail, stall,
flake, or kill its worker process on demand.  They exist so the test
suite can *prove* the fault-tolerance properties the benchmark claims —
failure isolation, retry recovery, worker-crash requeue, checkpoint
resume — rather than assert them on faith.  Nothing here is random:
faults trigger on query names, call counts, or filesystem markers.
"""

from __future__ import annotations

import os
import time

from repro.engine.database import Database
from repro.engine.query import Query
from repro.estimators.base import CardinalityEstimator


class InjectedFault(RuntimeError):
    """The error raised by the failing wrappers (recognizable in logs)."""


class EstimatorFaultWrapper(CardinalityEstimator):
    """Delegating base: behaves exactly like the wrapped estimator.

    Keeps the inner estimator's ``name`` so checkpoint keys, metrics
    and reports are unchanged by wrapping.
    """

    def __init__(self, inner: CardinalityEstimator):
        super().__init__()
        self._inner = inner
        self.name = inner.name

    def _fit(self, database: Database) -> None:
        self._inner.fit(database)

    def estimate(self, query: Query) -> float:
        return self._inner.estimate(query)

    def model_size_bytes(self) -> int:
        return self._inner.model_size_bytes()


class FailingEstimator(EstimatorFaultWrapper):
    """Raises :class:`InjectedFault` for selected queries.

    ``fail_queries`` matches ``query.name`` (sub-plan queries inherit
    their parent's name, so one entry fails a whole query's inference);
    ``None`` fails every call.
    """

    def __init__(self, inner: CardinalityEstimator, fail_queries=None):
        super().__init__(inner)
        self._fail_queries = None if fail_queries is None else set(fail_queries)

    def estimate(self, query: Query) -> float:
        if self._fail_queries is None or query.name in self._fail_queries:
            raise InjectedFault(f"injected estimator failure on {query.name!r}")
        return self._inner.estimate(query)


class FlakyEstimator(EstimatorFaultWrapper):
    """Fails the first ``failures`` calls per sub-plan, then succeeds.

    Keyed by the sub-plan's table set, so each sub-plan estimate flakes
    independently — exercising per-call retry rather than per-query.
    """

    def __init__(self, inner: CardinalityEstimator, failures: int = 1):
        super().__init__(inner)
        self._failures = failures
        self._calls: dict[tuple[str, frozenset[str]], int] = {}

    def estimate(self, query: Query) -> float:
        key = (query.name, frozenset(query.tables))
        seen = self._calls.get(key, 0)
        self._calls[key] = seen + 1
        if seen < self._failures:
            raise InjectedFault(
                f"injected flake {seen + 1}/{self._failures} on {query.name!r}"
            )
        return self._inner.estimate(query)


class SlowEstimator(EstimatorFaultWrapper):
    """Sleeps ``delay_seconds`` before every estimate (deadline tests)."""

    def __init__(self, inner: CardinalityEstimator, delay_seconds: float):
        super().__init__(inner)
        self._delay = delay_seconds

    def estimate(self, query: Query) -> float:
        time.sleep(self._delay)
        return self._inner.estimate(query)


class WorkerKillingEstimator(EstimatorFaultWrapper):
    """Kills the hosting process (``os._exit``) for selected queries.

    With a ``marker_path`` the kill happens only once across processes:
    the first matching call atomically creates the marker, then dies;
    every later call (e.g. the requeued attempt in a fresh worker) sees
    the marker and estimates normally.  Without a marker every matching
    call kills its process — the unrecoverable-crash case.
    """

    def __init__(
        self,
        inner: CardinalityEstimator,
        kill_queries,
        marker_path: str | os.PathLike | None = None,
        exit_code: int = 13,
    ):
        super().__init__(inner)
        self._kill_queries = set(kill_queries)
        self._marker = None if marker_path is None else os.fspath(marker_path)
        self._exit_code = exit_code

    def estimate(self, query: Query) -> float:
        if query.name in self._kill_queries:
            if self._marker is None:
                os._exit(self._exit_code)
            try:
                fd = os.open(self._marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                pass  # already crashed once; behave normally now
            else:
                os.close(fd)
                os._exit(self._exit_code)
        return self._inner.estimate(query)


class FaultyExecutor:
    """Executor wrapper that fails/stalls selected executions.

    Drop-in for :class:`repro.engine.executor.Executor` where the
    benchmark only calls ``execute``.  ``failures`` bounds how many
    calls raise before the wrapper becomes transparent (``None`` =
    always fail); ``delay_seconds`` stalls every call first.
    """

    def __init__(
        self,
        inner,
        failures: int | None = None,
        delay_seconds: float = 0.0,
    ):
        self._inner = inner
        self._failures = failures
        self._delay = delay_seconds
        self.calls = 0

    def __getattr__(self, attribute):
        return getattr(self._inner, attribute)

    def execute(self, plan, collect_stats: bool = False, **kwargs):
        self.calls += 1
        if self._delay:
            time.sleep(self._delay)
        if self._failures is None or self.calls <= self._failures:
            raise InjectedFault(f"injected executor failure (call {self.calls})")
        return self._inner.execute(plan, collect_stats, **kwargs)
