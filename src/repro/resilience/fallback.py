"""Graceful-degradation cardinality estimates.

When an estimator raises (or runs out of retry budget) on a sub-plan
query, the benchmark must still hand the planner *some* cardinality for
that sub-plan — losing the whole campaign over one inference failure is
exactly the failure mode this subsystem removes.  The fallback mirrors
what PostgreSQL does when it has no usable statistics: table row counts
scaled by the planner's default selectivity constants.

The constants are PostgreSQL's (``selfuncs.h``):

- ``DEFAULT_EQ_SEL = 0.005`` for equality / IN predicates,
- ``DEFAULT_INEQ_SEL = 1/3`` for one-sided range predicates,
- ``DEFAULT_RANGE_SEL = 0.005`` for two-sided ranges,
- equi-joins use ``DEFAULT_EQ_SEL`` per join edge (the ``1/max(nd)``
  rule with the default ``nd = 200``).

Deterministic, stat-free, and intentionally crude: a query served by
the fallback is still *marked failed* in its :class:`QueryRun`; the
fallback only keeps the plan-inject-execute pipeline moving.
"""

from __future__ import annotations

import math

from repro.engine.database import Database
from repro.engine.predicates import Predicate
from repro.engine.query import Query

DEFAULT_EQ_SEL = 0.005
DEFAULT_INEQ_SEL = 1.0 / 3.0
DEFAULT_RANGE_SEL = 0.005


def default_clause_selectivity(predicate: Predicate) -> float:
    """PostgreSQL's no-stats selectivity for one filter clause."""
    values = predicate.value_set()
    if values is not None:
        return min(1.0, DEFAULT_EQ_SEL * max(1, len(values)))
    low, high = predicate.interval()
    if math.isfinite(low) and math.isfinite(high):
        return DEFAULT_RANGE_SEL
    return DEFAULT_INEQ_SEL


class PostgresDefaultFallback:
    """Stat-free estimator used when the real estimator fails.

    Implements the same ``estimate(query) -> float`` contract as a
    :class:`~repro.estimators.base.CardinalityEstimator`, but needs no
    fitting beyond knowing the database's row counts, so it can never
    itself fail for data-dependent reasons.
    """

    name = "pg-default-fallback"

    def __init__(self, database: Database):
        self._rows = {
            name: float(table.num_rows) for name, table in database.tables.items()
        }

    def estimate(self, query: Query) -> float:
        estimate = 1.0
        for table in query.tables:
            selectivity = 1.0
            for predicate in query.predicates_on(table):
                selectivity *= default_clause_selectivity(predicate)
            estimate *= self._rows.get(table, 1.0) * selectivity
        for _ in query.join_edges:
            estimate *= DEFAULT_EQ_SEL
        return max(estimate, 1.0)
