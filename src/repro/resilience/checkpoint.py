"""Streaming campaign checkpoints (JSONL) and resume.

A campaign checkpoint is an append-only JSONL file: a header line
identifying the schema, then one ``query_run`` record per completed
(estimator, query) pair, flushed as soon as the pair finishes.  A
campaign killed at any point therefore loses at most the query it was
executing; re-running with ``--resume`` loads the file, skips every
recorded pair, and keeps appending to the same file.

Resumed runs are **correctness-grade, not timing-grade**: the recorded
cardinalities, plans and Q-/P-Errors splice bit-identically into the
resumed campaign, but the recorded phase timings were measured in the
interrupted process (possibly under different load), so end-to-end
wall-time aggregates of a resumed campaign must not be compared against
uninterrupted timing runs.
"""

from __future__ import annotations

import dataclasses
import json
import math
from pathlib import Path

from repro.core.benchmark import QueryRun

CHECKPOINT_SCHEMA_VERSION = 1


def query_run_to_dict(run: QueryRun) -> dict:
    """JSON-safe dict for one QueryRun (tuples become lists)."""
    payload = dataclasses.asdict(run)
    payload["join_order"] = _listify(payload["join_order"])
    if isinstance(payload["p_error"], float) and math.isnan(payload["p_error"]):
        payload["p_error"] = None  # NaN is not valid JSON
    return payload


def query_run_from_dict(payload: dict) -> QueryRun:
    """Rebuild a QueryRun from :func:`query_run_to_dict` output.

    Tolerates records written by older schema revisions: missing
    resilience fields default to their no-fault values.
    """
    return QueryRun(
        query_name=payload["query_name"],
        num_tables=payload["num_tables"],
        inference_seconds=payload["inference_seconds"],
        planning_seconds=payload["planning_seconds"],
        execution_seconds=payload["execution_seconds"],
        aborted=payload["aborted"],
        result_cardinality=payload["result_cardinality"],
        p_error=float("nan") if payload["p_error"] is None else payload["p_error"],
        q_errors=list(payload.get("q_errors", ())),
        join_order=_tuplify(payload.get("join_order", ())),
        methods=list(payload.get("methods", ())),
        trace_id=payload.get("trace_id"),
        failed=payload.get("failed", False),
        error=payload.get("error"),
        attempts=payload.get("attempts", 1),
        fallback_estimates=payload.get("fallback_estimates", 0),
    )


class CampaignCheckpoint:
    """Append-only JSONL record of completed (estimator, query) pairs."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._completed: dict[tuple[str, str], QueryRun] = {}
        self._handle = None

    # -- reading ----------------------------------------------------------

    @classmethod
    def resume(cls, path: str | Path) -> "CampaignCheckpoint":
        """Open ``path`` for resumption, loading every completed pair.

        A missing file is not an error — resuming a checkpoint that was
        never written behaves like starting fresh.  Truncated trailing
        lines (the usual signature of a killed process) are skipped.
        """
        checkpoint = cls(path)
        if checkpoint.path.exists():
            checkpoint._load()
        return checkpoint

    def _load(self) -> None:
        with self.path.open("r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # A torn final line from a killed writer; everything
                    # before it is intact (records are flushed whole).
                    continue
                kind = record.get("kind")
                if kind == "header":
                    version = record.get("schema_version")
                    if version != CHECKPOINT_SCHEMA_VERSION:
                        raise ValueError(
                            f"{self.path}: checkpoint schema {version!r} "
                            f"is not supported (expected "
                            f"{CHECKPOINT_SCHEMA_VERSION})"
                        )
                elif kind == "query_run":
                    run = query_run_from_dict(record["run"])
                    self._completed[(record["estimator"], run.query_name)] = run
                # Unknown kinds are ignored for forward compatibility.

    def get(self, estimator_name: str, query_name: str) -> QueryRun | None:
        """The recorded run for one pair, or None if not yet completed."""
        return self._completed.get((estimator_name, query_name))

    def completed_queries(self, estimator_name: str) -> set[str]:
        return {
            query for (name, query) in self._completed if name == estimator_name
        }

    def __len__(self) -> int:
        return len(self._completed)

    # -- writing ----------------------------------------------------------

    def _ensure_open(self) -> None:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            size = self.path.stat().st_size if self.path.exists() else 0
            torn_tail = False
            if size:
                with self.path.open("rb") as probe:
                    probe.seek(-1, 2)
                    torn_tail = probe.read(1) != b"\n"
            self._handle = self.path.open("a", encoding="utf-8")
            if torn_tail:
                # A killed writer can leave a torn final line with no
                # newline.  Terminate it before appending, otherwise
                # the next record would concatenate onto the fragment
                # and both would be lost to a later resume.
                self._handle.write("\n")
            if size == 0:
                self._write(
                    {"kind": "header", "schema_version": CHECKPOINT_SCHEMA_VERSION}
                )

    def _write(self, record: dict) -> None:
        self._handle.write(json.dumps(record) + "\n")
        self._handle.flush()

    def append(self, estimator_name: str, run: QueryRun) -> None:
        """Record one completed pair, durably, and remember it for get()."""
        self._ensure_open()
        self._write(
            {
                "kind": "query_run",
                "estimator": estimator_name,
                "run": query_run_to_dict(run),
            }
        )
        self._completed[(estimator_name, run.query_name)] = run

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CampaignCheckpoint":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _listify(value):
    if isinstance(value, tuple):
        return [_listify(item) for item in value]
    return value


def _tuplify(value):
    if isinstance(value, list):
        return tuple(_tuplify(item) for item in value)
    return value
