"""Declarative retry and timeout policies for benchmark campaigns.

The paper's end-to-end evaluation runs hundreds of (estimator, query)
pairs per campaign; at that scale run management — not estimator code —
dominates reliability.  This module provides the two policy objects the
benchmark driver threads through inference, planning and execution:

- :class:`RetryPolicy` — bounded attempts with exponential backoff and
  deterministic jitter.  ``None`` everywhere means "one attempt, no
  retry", which keeps no-fault runs byte-identical to the historical
  behaviour.
- :class:`TimeoutPolicy` — the per-execution, per-query and
  per-campaign deadlines that replace the benchmark's former single
  hard-coded ``timeout_seconds=120``.

Both are frozen dataclasses so they can be shared across forked worker
processes without synchronization.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from repro.obs import events as obs_events
from repro.obs import trace as obs_trace


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter.

    ``max_attempts`` counts the first try: ``max_attempts=1`` disables
    retrying entirely.  Backoff before attempt ``k`` (k >= 2) is
    ``backoff_seconds * multiplier**(k - 2)`` capped at
    ``max_backoff_seconds``, then jittered by up to
    ``jitter_fraction`` of itself.  Jitter is drawn from a
    ``random.Random(seed)`` stream created per retried call, so runs
    are reproducible.
    """

    max_attempts: int = 3
    backoff_seconds: float = 0.05
    backoff_multiplier: float = 2.0
    max_backoff_seconds: float = 2.0
    jitter_fraction: float = 0.1
    seed: int = 0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")

    def backoff_for(self, attempt: int, rng: random.Random | None = None) -> float:
        """Sleep before retry ``attempt`` (2-based; attempt 1 never sleeps)."""
        if attempt <= 1:
            return 0.0
        base = self.backoff_seconds * self.backoff_multiplier ** (attempt - 2)
        base = min(base, self.max_backoff_seconds)
        if rng is not None and self.jitter_fraction > 0:
            base += base * self.jitter_fraction * rng.random()
        return base

    @classmethod
    def none(cls) -> "RetryPolicy":
        """Single attempt — the historical (pre-resilience) behaviour."""
        return cls(max_attempts=1)


@dataclass(frozen=True)
class TimeoutPolicy:
    """Deadlines at the three campaign granularities.

    - ``execution_seconds`` — wall-clock budget of one plan execution
      (the executor's abort deadline; the old ``timeout_seconds``).
    - ``per_query_seconds`` — budget for one (estimator, query) pair
      across inference + planning + execution.  Inference checks it
      cooperatively between sub-plan estimates; the execution deadline
      shrinks to whatever budget remains.
    - ``campaign_seconds`` — budget for a whole ``run()``; queries that
      cannot start before it expires are recorded as ``failed`` (never
      silently dropped), so the result set stays complete.

    ``None`` disables the corresponding deadline.
    """

    execution_seconds: float | None = 120.0
    per_query_seconds: float | None = None
    campaign_seconds: float | None = None


class Deadline:
    """A wall-clock deadline with remaining-budget arithmetic."""

    __slots__ = ("_at",)

    def __init__(self, at: float | None):
        self._at = at

    @classmethod
    def after(cls, seconds: float | None, clock=time.perf_counter) -> "Deadline":
        return cls(None if seconds is None else clock() + seconds)

    @classmethod
    def unbounded(cls) -> "Deadline":
        return cls(None)

    @classmethod
    def earliest(cls, *deadlines: "Deadline | None") -> "Deadline":
        """The tightest of several deadlines (``None`` entries ignored)."""
        instants = [d._at for d in deadlines if d is not None and d._at is not None]
        return cls(min(instants)) if instants else cls(None)

    @property
    def expired(self) -> bool:
        return self._at is not None and time.perf_counter() >= self._at

    def remaining(self) -> float | None:
        """Seconds left (>= 0), or ``None`` for an unbounded deadline."""
        if self._at is None:
            return None
        return max(0.0, self._at - time.perf_counter())

    def tightest(self, seconds: float | None) -> float | None:
        """Combine with a static budget: the smaller of the two, or None."""
        remaining = self.remaining()
        if remaining is None:
            return seconds
        if seconds is None:
            return remaining
        return min(seconds, remaining)


class RetriesExhausted(RuntimeError):
    """All attempts of a retried call failed; carries the attempt count."""

    def __init__(self, message: str, attempts: int, last: BaseException):
        super().__init__(message)
        self.attempts = attempts
        self.last = last


def call_with_retry(
    fn,
    policy: RetryPolicy | None,
    *,
    non_retryable: tuple[type[BaseException], ...] = (),
    deadline: Deadline | None = None,
    sleep=time.sleep,
    on_retry=None,
):
    """Run ``fn()`` under ``policy``; return ``(value, attempts)``.

    Retries on any :class:`Exception` except ``non_retryable`` ones.
    A ``None`` policy means one attempt.  An expired ``deadline`` stops
    further attempts.  When every attempt fails the *last* exception is
    re-raised with an ``attempts`` attribute set, so callers report how
    hard the call was tried.  ``on_retry(attempt, exc)`` is invoked
    before each backoff sleep (metrics hook).

    When a tracer is active, every attempt past the first runs inside a
    child ``retry`` span carrying ``attempt`` and the ``backoff_seconds``
    slept before it, so retried calls stay connected to their query in
    ``repro trace`` output.  The first attempt takes the historical,
    span-free path.
    """
    attempts_allowed = 1 if policy is None else policy.max_attempts
    rng = (
        random.Random(policy.seed)
        if policy is not None and policy.jitter_fraction > 0
        else None
    )
    attempt = 0
    backoff_slept = 0.0
    while True:
        attempt += 1
        try:
            if attempt == 1:
                return fn(), attempt
            with obs_trace.span(
                "retry",
                attempt=attempt,
                backoff_seconds=round(backoff_slept, 6),
            ):
                return fn(), attempt
        except Exception as exc:
            retryable = not isinstance(exc, non_retryable)
            out_of_budget = deadline is not None and deadline.expired
            if not retryable or attempt >= attempts_allowed or out_of_budget:
                exc.attempts = attempt
                raise
            if on_retry is not None:
                on_retry(attempt, exc)
            pause = policy.backoff_for(attempt + 1, rng)
            if pause > 0 and deadline is not None:
                budget = deadline.remaining()
                if budget is not None:
                    pause = min(pause, budget)
            obs_events.emit(
                "retry",
                level="warning",
                attempt=attempt + 1,
                backoff_seconds=round(pause, 6),
                error=f"{type(exc).__name__}: {exc}",
            )
            backoff_slept = pause
            if pause > 0:
                sleep(pause)
