"""Fault tolerance for benchmark campaigns.

The paper's end-to-end evaluation is a long campaign of (estimator,
query) pairs; this package keeps such campaigns alive through
estimator exceptions, hung executions, dead fork workers and process
kills:

- :mod:`~repro.resilience.policy` — declarative retry/backoff and
  per-execution / per-query / per-campaign timeout policies,
- :mod:`~repro.resilience.inference` — failure-isolated sub-plan
  estimation with graceful degradation,
- :mod:`~repro.resilience.fallback` — PostgreSQL-default estimates
  injected for failed sub-plans,
- :mod:`~repro.resilience.checkpoint` — streaming JSONL checkpoints
  and ``--resume`` support,
- :mod:`~repro.resilience.faults` — deterministic fault injection used
  by the tests to prove all of the above.

The checkpoint and inference symbols are loaded lazily (PEP 562):
those modules import :mod:`repro.core.benchmark`, which itself uses
this package's policies, so eager imports here would close an import
cycle.
"""

from repro.resilience.fallback import PostgresDefaultFallback
from repro.resilience.policy import (
    Deadline,
    RetryPolicy,
    TimeoutPolicy,
    call_with_retry,
)

_LAZY = {
    "CampaignCheckpoint": ("repro.resilience.checkpoint", "CampaignCheckpoint"),
    "query_run_from_dict": ("repro.resilience.checkpoint", "query_run_from_dict"),
    "query_run_to_dict": ("repro.resilience.checkpoint", "query_run_to_dict"),
    "InferenceOutcome": ("repro.resilience.inference", "InferenceOutcome"),
    "resilient_sub_plan_estimates": (
        "repro.resilience.inference",
        "resilient_sub_plan_estimates",
    ),
}

__all__ = [
    "CampaignCheckpoint",
    "Deadline",
    "InferenceOutcome",
    "PostgresDefaultFallback",
    "RetryPolicy",
    "TimeoutPolicy",
    "call_with_retry",
    "query_run_from_dict",
    "query_run_to_dict",
    "resilient_sub_plan_estimates",
]


def __getattr__(name: str):
    try:
        module_name, attribute = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attribute)
