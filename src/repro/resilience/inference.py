"""Failure-isolated sub-plan estimation.

The resilient twin of :func:`repro.core.injection.estimate_sub_plans`:
on the no-fault path it prices the whole sub-plan space with one
``estimate_batch`` call — same estimates, same clamping, same metric
names as the injection pass.  Two situations use the historical
per-sub-plan loop instead: a *bounded* per-query deadline (a batch
call is indivisible, so only the loop can check the budget between
sub-plans), and a failed batch call (any exception, or a malformed
result) degrading mid-campaign.  In the loop each individual
``estimator.estimate`` call runs under the campaign's
:class:`~repro.resilience.policy.RetryPolicy`; a sub-plan whose
estimate ultimately fails (or whose per-query deadline has expired) is
served by the PostgreSQL-default fallback instead of aborting the
query — the query is then *marked failed* by the benchmark driver, but
the campaign keeps moving.  Failure isolation is therefore untouched:
the batch path only ever serves complete, successful passes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.injection import record_batch_inference, sub_plan_queries
from repro.engine.query import Query
from repro.estimators.base import EstimationError
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.resilience.policy import Deadline, RetryPolicy, call_with_retry


@dataclass
class InferenceOutcome:
    """Result of one failure-isolated estimation pass."""

    #: per-sub-plan cardinalities (clamped to >= 1), fallbacks included.
    cards: dict[frozenset[str], float] = field(default_factory=dict)
    #: sub-plans whose estimator call failed, with the final error text.
    failures: dict[frozenset[str], str] = field(default_factory=dict)
    #: total estimate attempts across all sub-plans (== number of
    #: sub-plans on a retry-free, fault-free pass).
    attempts: int = 0
    #: highest attempt count any single sub-plan estimate needed.
    max_attempts: int = 1
    #: sub-plans skipped because the per-query deadline expired.
    deadline_skipped: int = 0

    @property
    def failed(self) -> bool:
        return bool(self.failures) or self.deadline_skipped > 0

    @property
    def fallback_count(self) -> int:
        """Sub-plans served by the fallback (failed + deadline-skipped)."""
        return len(self.failures) + self.deadline_skipped

    def error_summary(self) -> str | None:
        """Human-readable first error (plus a count when there are more)."""
        parts = []
        if self.failures:
            subset, error = next(iter(self.failures.items()))
            label = "+".join(sorted(subset))
            parts.append(f"inference failed on {label}: {error}")
            if len(self.failures) > 1:
                parts.append(f"(+{len(self.failures) - 1} more sub-plans)")
        if self.deadline_skipped:
            parts.append(
                f"{self.deadline_skipped} sub-plan estimates skipped: "
                "per-query deadline exceeded"
            )
        return " ".join(parts) if parts else None


def resilient_sub_plan_estimates(
    estimator,
    query: Query,
    *,
    fallback,
    retry: RetryPolicy | None = None,
    deadline: Deadline | None = None,
) -> InferenceOutcome:
    """Estimate every sub-plan of ``query``, isolating per-call failures.

    ``fallback`` supplies estimates for failed/skipped sub-plans (any
    object with ``estimate(query) -> float``; see
    :class:`~repro.resilience.fallback.PostgresDefaultFallback`).
    :class:`~repro.estimators.base.EstimationError` is treated as
    deterministic and never retried.
    """
    sub_queries = sub_plan_queries(query)
    estimator_name = getattr(estimator, "name", type(estimator).__name__)
    outcome = InferenceOutcome()
    registry = obs_metrics.registry()
    with obs_trace.span(
        "inference", estimator=estimator_name, sub_plans=len(sub_queries)
    ) as span:
        # Fast path: one batched call prices the whole sub-plan space.
        # Any failure inside it (including a wrong-length result) falls
        # through to the per-sub-plan retry/fallback loop below, which
        # re-runs everything with full failure isolation.  A *bounded*
        # per-query deadline disables the fast path outright: a batch
        # call is indivisible, so only the loop — which checks the
        # deadline cooperatively between sub-plans — can honour the
        # budget.
        bounded_deadline = deadline is not None and deadline.remaining() is not None
        batch = getattr(estimator, "estimate_batch", None)
        if sub_queries and batch is not None and not bounded_deadline:
            started = time.perf_counter()
            try:
                estimates = batch(list(sub_queries.values()))
                if len(estimates) != len(sub_queries):
                    raise EstimationError(
                        f"estimate_batch returned {len(estimates)} estimates "
                        f"for {len(sub_queries)} sub-plans"
                    )
                cards = {
                    subset: max(1.0, float(estimate))
                    for subset, estimate in zip(sub_queries, estimates)
                }
            except Exception as exc:
                registry.counter("resilience.batch_inference_degraded").inc()
                obs_events.emit(
                    "inference.batch_degraded",
                    level="warning",
                    reason=f"{type(exc).__name__}: {exc}",
                    sub_plans=len(sub_queries),
                )
            else:
                elapsed = time.perf_counter() - started
                outcome.cards = cards
                outcome.attempts = len(sub_queries)
                if obs_trace.is_active():
                    span.set(batch_seconds=elapsed)
                    record_batch_inference(
                        estimator_name, len(sub_queries), elapsed
                    )
                return outcome
        histogram = (
            registry.histogram(f"inference.latency_seconds.{estimator_name}")
            if obs_trace.is_active()
            else None
        )
        for subset, subquery in sub_queries.items():
            if deadline is not None and deadline.expired:
                outcome.deadline_skipped += 1
                outcome.cards[subset] = max(1.0, float(fallback.estimate(subquery)))
                registry.counter("resilience.fallback_estimates").inc()
                obs_events.emit(
                    "inference.fallback",
                    level="warning",
                    tables=sorted(subset),
                    reason="per-query deadline exceeded",
                )
                continue
            started = time.perf_counter()
            try:
                value, attempts = call_with_retry(
                    lambda sq=subquery: float(estimator.estimate(sq)),
                    retry,
                    non_retryable=(EstimationError,),
                    deadline=deadline,
                    on_retry=lambda *_: registry.counter(
                        "resilience.inference_retries"
                    ).inc(),
                )
            except Exception as exc:
                attempts = getattr(exc, "attempts", 1)
                outcome.attempts += attempts
                outcome.max_attempts = max(outcome.max_attempts, attempts)
                outcome.failures[subset] = f"{type(exc).__name__}: {exc}"
                value = float(fallback.estimate(subquery))
                registry.counter("resilience.fallback_estimates").inc()
                obs_events.emit(
                    "inference.fallback",
                    level="warning",
                    tables=sorted(subset),
                    reason=outcome.failures[subset],
                )
            else:
                outcome.attempts += attempts
                outcome.max_attempts = max(outcome.max_attempts, attempts)
            if histogram is not None:
                histogram.observe(time.perf_counter() - started)
            outcome.cards[subset] = max(1.0, value)
        if obs_trace.is_active():
            registry.counter("injection.sub_plans_estimated").inc(len(sub_queries))
    return outcome
