"""Self-contained HTML campaign dashboard.

Renders one static HTML page — no JavaScript frameworks, no external
assets, openable from disk or a CI artifact tab — from whatever
campaign artifacts exist:

- the **checkpoint** (completed per-query runs, the durable ground
  truth even for a killed campaign),
- the **event log** (campaign begin/end, retries, fallbacks, worker
  crashes — also the source of the campaign's intended query total, so
  partial progress renders as ``done / total``),
- the **run manifest** (config + metrics snapshot),
- a **blame report** (per-sub-plan misestimation attribution), and
- the **serving artifacts** — the access log and drift pairs a
  ``repro serve --obs-dir`` process appends — rendered as a live
  serve panel: per-route request/error/latency rollup plus windowed
  est-vs-actual drift.

Every input is optional: the dashboard of a campaign killed after its
first query is just a shorter page, not an error.  Artifacts with a
``schema_version`` are validated on load and rejected loudly when
incompatible.
"""

from __future__ import annotations

import html
import statistics
import time
from pathlib import Path

from repro.obs import blame as obs_blame
from repro.obs import events as obs_events
from repro.obs.manifest import load_run_manifest
from repro.resilience.checkpoint import CampaignCheckpoint

#: Events shown in the "recent events" tail.
_EVENT_TAIL = 50

_STYLE = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 70rem; color: #1a2330; }
h1 { font-size: 1.5rem; } h2 { font-size: 1.15rem; margin-top: 2rem; }
table { border-collapse: collapse; width: 100%; font-size: 0.85rem; }
th, td { border: 1px solid #d5dbe3; padding: 0.3rem 0.55rem; text-align: left; }
th { background: #eef1f5; }
.num { text-align: right; font-variant-numeric: tabular-nums; }
.bar { background: #e4e8ee; border-radius: 4px; height: 1.1rem;
       overflow: hidden; margin: 0.4rem 0; }
.bar > div { background: #3c78c3; height: 100%; }
.ok { color: #1d7a35; } .bad { color: #b3261e; } .warn { color: #9a6700; }
.muted { color: #68727f; font-size: 0.85rem; }
code { background: #f2f4f7; padding: 0.1rem 0.25rem; border-radius: 3px; }
"""


def _esc(value) -> str:
    return html.escape(str(value))


def _fmt(value, digits: int = 3) -> str:
    if value is None:
        return "–"
    if isinstance(value, float):
        if value != value:  # NaN
            return "–"
        return f"{value:.{digits}f}"
    return _esc(value)


def _status(run: dict) -> str:
    if run.get("failed"):
        return '<span class="bad">failed</span>'
    if run.get("aborted"):
        return '<span class="warn">aborted</span>'
    return '<span class="ok">ok</span>'


# -- artifact loading ---------------------------------------------------------


def _load_checkpoint_runs(path) -> list[dict]:
    """Completed (estimator, query) pairs as plain dicts."""
    checkpoint = CampaignCheckpoint.resume(path)
    runs = []
    for (estimator, _), run in sorted(checkpoint._completed.items()):
        runs.append(
            {
                "estimator": estimator,
                "query": run.query_name,
                "num_tables": run.num_tables,
                "p_error": run.p_error,
                "end_to_end_seconds": run.end_to_end_seconds,
                "attempts": run.attempts,
                "failed": run.failed,
                "aborted": run.aborted,
                "error": run.error,
            }
        )
    return runs


def _campaign_from_events(events: list[dict]) -> dict:
    """Campaign framing (total, estimator, end state) from the event log."""
    campaign: dict = {}
    for record in events:
        if record.get("event") == "campaign.begin":
            campaign = {
                "total": record.get("total"),
                "estimator": record.get("estimator"),
                "workload": record.get("workload"),
                "ended": False,
            }
        elif record.get("event") == "campaign.end":
            campaign["ended"] = True
            campaign["failed"] = record.get("failed")
            campaign["aborted"] = record.get("aborted")
    return campaign


# -- section renderers --------------------------------------------------------


def _progress_section(runs: list[dict], campaign: dict) -> list[str]:
    done = len(runs)
    total = campaign.get("total") or done
    failed = sum(1 for r in runs if r["failed"])
    aborted = sum(1 for r in runs if r["aborted"])
    percent = 100.0 * done / total if total else 0.0
    label = " / ".join(
        part
        for part in (campaign.get("estimator"), campaign.get("workload"))
        if part
    )
    state = (
        "completed"
        if campaign.get("ended")
        else "in progress or interrupted (partial artifacts)"
    )
    lines = ["<h2>Campaign progress</h2>"]
    if label:
        lines.append(f"<p><strong>{_esc(label)}</strong> — {state}</p>")
    lines.append(
        f'<div class="bar"><div style="width:{percent:.1f}%"></div></div>'
    )
    lines.append(
        f"<p>{done} / {total} queries completed"
        f" ({percent:.0f}%) — "
        f'<span class="bad">{failed} failed</span>, '
        f'<span class="warn">{aborted} aborted</span></p>'
    )
    return lines


def _runs_section(runs: list[dict]) -> list[str]:
    if not runs:
        return []
    lines = ["<h2>Completed queries (from checkpoint)</h2>", "<table>"]
    lines.append(
        "<tr><th>query</th><th>estimator</th><th>tables</th><th>P-Error</th>"
        "<th>end-to-end</th><th>attempts</th><th>status</th></tr>"
    )
    for run in runs:
        lines.append(
            "<tr>"
            f"<td>{_esc(run['query'])}</td>"
            f"<td>{_esc(run['estimator'])}</td>"
            f'<td class="num">{run["num_tables"]}</td>'
            f'<td class="num">{_fmt(run["p_error"])}</td>'
            f'<td class="num">{_fmt(run["end_to_end_seconds"], 4)}s</td>'
            f'<td class="num">{run["attempts"]}</td>'
            f"<td>{_status(run)}</td>"
            "</tr>"
        )
    lines.append("</table>")
    errors = [r for r in runs if r.get("error")]
    if errors:
        lines.append('<p class="muted">Errors: '
                     + "; ".join(
                         f"<code>{_esc(r['query'])}: {_esc(r['error'])}</code>"
                         for r in errors
                     )
                     + "</p>")
    return lines


def _blame_section(payload: dict) -> list[str]:
    lines = [
        "<h2>Plan-quality blame</h2>",
        f"<p>Estimator <strong>{_esc(payload.get('estimator', '?'))}</strong> "
        f"on {_esc(payload.get('workload', '?'))}</p>",
    ]
    queries = payload.get("queries", [])
    if queries:
        ranked = sorted(
            queries,
            key=lambda q: -(q.get("p_error") or 0.0),
        )[:10]
        lines.append("<h3>Worst queries</h3><table>")
        lines.append(
            "<tr><th>query</th><th>P-Error</th><th>runtime gap</th>"
            "<th>plans differ</th><th>top offending sub-plan</th></tr>"
        )
        for query in ranked:
            attributions = query.get("attributions", [])
            top = attributions[0] if attributions else None
            offender = "–"
            if top is not None:
                offender = (
                    f"{_esc(' ⋈ '.join(top['tables']))} "
                    f"({_esc(top['direction'])} {top['ratio']:.1f}×: "
                    f"est {top['estimated_rows']:.0f} vs "
                    f"true {top['true_rows']:.0f})"
                )
            gap = query.get("runtime_gap_seconds")
            lines.append(
                "<tr>"
                f"<td>{_esc(query['query'])}</td>"
                f'<td class="num">{_fmt(query.get("p_error"))}</td>'
                f'<td class="num">{_fmt(gap, 4)}</td>'
                f"<td>{'yes' if query.get('plans_differ') else 'no'}</td>"
                f"<td>{offender}</td>"
                "</tr>"
            )
        lines.append("</table>")
    rollup = payload.get("rollup_by_subplan", [])
    if rollup:
        lines.append("<h3>Repeat-offender sub-plans</h3><table>")
        lines.append(
            "<tr><th>sub-plan</th><th>times top offender</th>"
            "<th>worst ratio</th><th>runtime gap</th></tr>"
        )
        for entry in rollup[:10]:
            lines.append(
                "<tr>"
                f"<td>{_esc(' ⋈ '.join(entry['tables']))}</td>"
                f'<td class="num">{entry["times_top_offender"]}</td>'
                f'<td class="num">{entry["max_ratio"]:.1f}×</td>'
                f'<td class="num">{_fmt(entry.get("runtime_gap_seconds"), 4)}</td>'
                "</tr>"
            )
        lines.append("</table>")
    return lines


def _events_section(events: list[dict]) -> list[str]:
    if not events:
        return []
    lines = [
        f"<h2>Recent events (last {min(len(events), _EVENT_TAIL)} "
        f"of {len(events)})</h2>",
        "<table>",
        "<tr><th>time</th><th>level</th><th>event</th><th>detail</th></tr>",
    ]
    for record in events[-_EVENT_TAIL:]:
        ts = time.strftime("%H:%M:%S", time.localtime(record.get("ts", 0)))
        level = record.get("level", "info")
        css = {"error": "bad", "warning": "warn"}.get(level, "muted")
        detail = ", ".join(
            f"{key}={value}"
            for key, value in sorted(record.items())
            if key not in ("ts", "level", "event")
        )
        lines.append(
            "<tr>"
            f"<td>{ts}</td>"
            f'<td><span class="{css}">{_esc(level)}</span></td>'
            f"<td>{_esc(record.get('event', '?'))}</td>"
            f"<td>{_esc(detail)}</td>"
            "</tr>"
        )
    lines.append("</table>")
    return lines


def _phases_section(manifest: dict) -> list[str]:
    """Per-estimator phase attribution table (wall / CPU / peak memory)."""
    profile = manifest.get("phase_profile") or {}
    phases = profile.get("phases") or {}
    if not phases:
        return []
    lines = [
        "<h2>Phase profile (from manifest)</h2>",
        "<table>",
        "<tr><th>estimator</th><th>phase</th><th>count</th>"
        "<th>wall s</th><th>CPU s</th><th>peak MiB</th></tr>",
    ]
    for estimator in sorted(phases):
        for name, payload in sorted(phases[estimator].items()):
            lines.append(
                "<tr>"
                f"<td>{_esc(estimator)}</td>"
                f"<td>{_esc(name)}</td>"
                f'<td class="num">{payload.get("count", 0)}</td>'
                f'<td class="num">{_fmt(payload.get("wall_seconds"), 4)}</td>'
                f'<td class="num">{_fmt(payload.get("cpu_seconds"), 4)}</td>'
                f'<td class="num">'
                f"{_fmt(payload.get('peak_bytes', 0) / 1048576.0, 2)}</td>"
                "</tr>"
            )
    lines.append("</table>")
    parallel = profile.get("parallel")
    if parallel:
        lines.append(
            f'<p class="muted">Parallel section: '
            f"{_fmt(parallel.get('wall_seconds'), 3)}s wall × "
            f"{parallel.get('workers')} workers; "
            f"{_fmt(parallel.get('compute_wall_seconds'), 3)}s worker compute, "
            f"{_fmt(parallel.get('dispatch_overhead_seconds'), 3)}s "
            "dispatch/idle overhead.</p>"
        )
    workers = profile.get("workers") or {}
    if workers:
        lines.append("<table>")
        lines.append(
            "<tr><th>worker</th><th>tasks</th><th>compute wall s</th>"
            "<th>CPU s</th></tr>"
        )
        for worker in sorted(workers):
            entry = workers[worker]
            lines.append(
                "<tr>"
                f"<td>{_esc(worker)}</td>"
                f'<td class="num">{entry.get("tasks", 0)}</td>'
                f'<td class="num">{_fmt(entry.get("compute_wall_seconds"), 3)}</td>'
                f'<td class="num">{_fmt(entry.get("cpu_seconds"), 3)}</td>'
                "</tr>"
            )
        lines.append("</table>")
    return lines


def _serve_section(access: list[dict], drift_pairs: list[dict]) -> list[str]:
    """Live serve panel: per-route outcomes + accuracy-drift windows."""
    lines: list[str] = ["<h2>Serving</h2>"]
    if access:
        routes: dict[str, dict] = {}
        for record in access:
            entry = routes.setdefault(
                record.get("route", "?"),
                {"count": 0, "errors": 0, "client_errors": 0, "latencies": []},
            )
            entry["count"] += 1
            status = record.get("status", 0)
            if status >= 500:
                entry["errors"] += 1
            elif status >= 400:
                entry["client_errors"] += 1
            entry["latencies"].append(float(record.get("latency_ms", 0.0)))
        lines.append(
            f"<p>{len(access)} requests in the access log.</p><table>"
            "<tr><th>route</th><th>requests</th><th>4xx</th><th>5xx</th>"
            "<th>p50 ms</th><th>p99 ms</th></tr>"
        )
        for route in sorted(routes):
            entry = routes[route]
            ordered = sorted(entry["latencies"])
            p50 = ordered[len(ordered) // 2]
            p99 = ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]
            css = "bad" if entry["errors"] else "num"
            lines.append(
                "<tr>"
                f"<td><code>{_esc(route)}</code></td>"
                f'<td class="num">{entry["count"]}</td>'
                f'<td class="num">{entry["client_errors"]}</td>'
                f'<td class="{css}">{entry["errors"]}</td>'
                f'<td class="num">{_fmt(p50, 3)}</td>'
                f'<td class="num">{_fmt(p99, 3)}</td>'
                "</tr>"
            )
        lines.append("</table>")
    if drift_pairs:
        windows: dict[tuple, dict] = {}
        for pair in drift_pairs:
            key = (
                pair.get("model", "?"),
                pair.get("version", 0),
                tuple(pair.get("tables", [])),
            )
            entry = windows.setdefault(key, {"q_errors": [], "sources": set()})
            entry["q_errors"].append(float(pair.get("q_error", 0.0)))
            entry["sources"].add(pair.get("source", "?"))
        lines.append(
            f"<h3>Accuracy drift ({len(drift_pairs)} est-vs-actual pairs)</h3>"
            "<table><tr><th>model</th><th>version</th><th>join template</th>"
            "<th>pairs</th><th>median q-error</th><th>max q-error</th>"
            "<th>sources</th></tr>"
        )
        for (model, version, tables), entry in sorted(windows.items()):
            median_q = statistics.median(entry["q_errors"])
            css = "bad" if median_q > 4.0 else "num"
            lines.append(
                "<tr>"
                f"<td>{_esc(model)}</td>"
                f'<td class="num">{_esc(version)}</td>'
                f"<td>{_esc(' ⋈ '.join(tables) or 'single-table')}</td>"
                f'<td class="num">{len(entry["q_errors"])}</td>'
                f'<td class="{css}">{_fmt(median_q, 2)}</td>'
                f'<td class="num">{_fmt(max(entry["q_errors"]), 2)}</td>'
                f"<td>{_esc(', '.join(sorted(entry['sources'])))}</td>"
                "</tr>"
            )
        lines.append("</table>")
    if len(lines) == 1:
        lines.append("<p>No serving traffic recorded yet.</p>")
    return lines


def _metrics_section(manifest: dict) -> list[str]:
    counters = manifest.get("metrics", {}).get("counters", {})
    if not counters:
        return []
    lines = [
        "<h2>Metrics (from manifest)</h2>",
        "<table>",
        "<tr><th>counter</th><th>value</th></tr>",
    ]
    for name in sorted(counters):
        lines.append(
            f'<tr><td><code>{_esc(name)}</code></td>'
            f'<td class="num">{counters[name]:g}</td></tr>'
        )
    lines.append("</table>")
    return lines


# -- assembly -----------------------------------------------------------------


def render_dashboard(
    checkpoint_path: str | Path | None = None,
    events_path: str | Path | None = None,
    manifest_path: str | Path | None = None,
    blame_path: str | Path | None = None,
    serve_access_path: str | Path | None = None,
    serve_drift_path: str | Path | None = None,
    title: str = "repro campaign dashboard",
) -> str:
    """Render the dashboard HTML from whichever artifacts are given."""
    runs = (
        _load_checkpoint_runs(checkpoint_path)
        if checkpoint_path is not None and Path(checkpoint_path).exists()
        else []
    )
    events = (
        obs_events.load_events(events_path) if events_path is not None else []
    )
    campaign = _campaign_from_events(events)
    manifest = (
        load_run_manifest(manifest_path)
        if manifest_path is not None and Path(manifest_path).exists()
        else {}
    )
    blame_payload = (
        obs_blame.load_blame_json(blame_path)
        if blame_path is not None and Path(blame_path).exists()
        else {}
    )
    access_records: list[dict] = []
    drift_pairs: list[dict] = []
    if serve_access_path is not None:
        from repro.serve.tracing import load_access_log

        access_records = load_access_log(serve_access_path)
    if serve_drift_path is not None:
        from repro.serve.drift import load_drift_pairs

        drift_pairs = load_drift_pairs(serve_drift_path)

    sources = [
        ("checkpoint", checkpoint_path),
        ("events", events_path),
        ("manifest", manifest_path),
        ("blame", blame_path),
        ("serve access", serve_access_path),
        ("serve drift", serve_drift_path),
    ]
    source_line = ", ".join(
        f"{label}: <code>{_esc(path)}</code>"
        for label, path in sources
        if path is not None
    )

    body: list[str] = [f"<h1>{_esc(title)}</h1>"]
    if source_line:
        body.append(f'<p class="muted">Artifacts — {source_line}</p>')
    if runs or campaign:
        body.extend(_progress_section(runs, campaign))
    body.extend(_runs_section(runs))
    if blame_payload:
        body.extend(_blame_section(blame_payload))
    if access_records or drift_pairs:
        body.extend(_serve_section(access_records, drift_pairs))
    body.extend(_events_section(events))
    if manifest:
        body.extend(_phases_section(manifest))
        body.extend(_metrics_section(manifest))
    if len(body) <= 2:
        body.append("<p>No campaign artifacts found.</p>")
    generated = time.strftime("%Y-%m-%d %H:%M:%S")
    body.append(f'<p class="muted">Generated {generated}.</p>')

    return (
        "<!doctype html>\n<html><head><meta charset='utf-8'>"
        f"<title>{_esc(title)}</title><style>{_STYLE}</style></head>\n"
        "<body>\n" + "\n".join(body) + "\n</body></html>\n"
    )


def write_dashboard(
    path: str | Path,
    checkpoint_path: str | Path | None = None,
    events_path: str | Path | None = None,
    manifest_path: str | Path | None = None,
    blame_path: str | Path | None = None,
    serve_access_path: str | Path | None = None,
    serve_drift_path: str | Path | None = None,
    title: str = "repro campaign dashboard",
) -> Path:
    """Render and write the dashboard; returns the output path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        render_dashboard(
            checkpoint_path=checkpoint_path,
            events_path=events_path,
            manifest_path=manifest_path,
            blame_path=blame_path,
            serve_access_path=serve_access_path,
            serve_drift_path=serve_drift_path,
            title=title,
        )
    )
    return path
