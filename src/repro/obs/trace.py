"""Hierarchical tracing with a JSONL exporter.

A :class:`Tracer` records a tree of *spans* — named, timed sections of
work carrying attributes and parent links — so one benchmark query can
be decomposed exactly the way the paper decomposes end-to-end time:

.. code-block:: text

    query
    ├── inference          (estimator sub-plan estimates)
    ├── planning           (DP join-order search)
    └── execution
        ├── hash_join
        │   ├── seq_scan
        │   └── seq_scan
        └── ...

Instrumented code never talks to a tracer directly; it calls the
module-level :func:`span` context manager, which is a shared no-op
unless a tracer has been activated (:func:`use_tracer` /
:func:`activate`).  The disabled path is a single global read plus a
constant context-manager enter/exit, so leaving instrumentation in hot
call sites is safe.

Traces serialize one span per line as JSON (:meth:`Tracer.export_jsonl`)
and can be reloaded and pretty-printed with :func:`load_trace` /
:func:`render_trace` (the ``repro trace`` CLI verb).
"""

from __future__ import annotations

import json
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path


@dataclass
class Span:
    """One timed section of work inside a trace."""

    name: str
    span_id: str
    trace_id: str
    parent_id: str | None
    started_unix: float
    attributes: dict = field(default_factory=dict)
    duration_seconds: float = 0.0
    status: str = "ok"

    def set(self, **attributes) -> None:
        """Attach (or overwrite) attributes on the live span."""
        self.attributes.update(attributes)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "started_unix": self.started_unix,
            "duration_seconds": self.duration_seconds,
            "status": self.status,
            "attributes": self.attributes,
        }


class _NullSpan:
    """Shared do-nothing span: the disabled-mode recorder."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attributes) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects a tree of finished spans for one trace."""

    def __init__(self, trace_id: str | None = None):
        self.trace_id = trace_id or uuid.uuid4().hex[:16]
        self.spans: list[Span] = []
        self._stack: list[Span] = []
        self._next_id = 0

    @property
    def current_span(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, /, **attributes):
        self._next_id += 1
        span = Span(
            name=name,
            span_id=f"{self.trace_id}.{self._next_id}",
            trace_id=self.trace_id,
            parent_id=self._stack[-1].span_id if self._stack else None,
            started_unix=time.time(),
            attributes=dict(attributes),
        )
        self._stack.append(span)
        started = time.perf_counter()
        try:
            yield span
        except BaseException as exc:
            span.status = f"error:{type(exc).__name__}"
            raise
        finally:
            span.duration_seconds = time.perf_counter() - started
            self._stack.pop()
            self.spans.append(span)

    def record(self, name: str, duration_seconds: float = 0.0, /, **attributes) -> Span:
        """Append an already-measured span under the current parent.

        For work that finished before a tracer could wrap it (e.g. the
        micro-batcher's assembly window, which elapses before the batch
        group is known): the span is backdated so its start lines up
        with when the measured work began.
        """
        self._next_id += 1
        span = Span(
            name=name,
            span_id=f"{self.trace_id}.{self._next_id}",
            trace_id=self.trace_id,
            parent_id=self._stack[-1].span_id if self._stack else None,
            started_unix=time.time() - duration_seconds,
            attributes=dict(attributes),
            duration_seconds=duration_seconds,
        )
        self.spans.append(span)
        return span

    def to_dicts(self) -> list[dict]:
        """Finished spans in start order (parents precede children)."""
        return [span.to_dict() for span in sorted(self.spans, key=_span_sort_key)]

    def export_jsonl(self, path: str | Path) -> Path:
        """Write the trace as one JSON object per line."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as handle:
            for item in self.to_dicts():
                handle.write(json.dumps(item) + "\n")
        return path


def _span_sort_key(span: Span) -> tuple:
    return (span.started_unix, int(span.span_id.rsplit(".", 1)[-1]))


# -- module-level recorder ----------------------------------------------------

_ACTIVE: Tracer | None = None


def active_tracer() -> Tracer | None:
    """The currently installed tracer, or ``None`` when disabled."""
    return _ACTIVE


def is_active() -> bool:
    return _ACTIVE is not None


def activate(tracer: Tracer | None = None) -> Tracer:
    """Install ``tracer`` (or a fresh one) as the process recorder."""
    global _ACTIVE
    _ACTIVE = tracer or Tracer()
    return _ACTIVE


def deactivate() -> None:
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def use_tracer(tracer: Tracer | None = None):
    """Scoped activation: ``with use_tracer() as t: ... t.export_jsonl(p)``."""
    installed = activate(tracer)
    try:
        yield installed
    finally:
        deactivate()


def span(name: str, /, **attributes):
    """Record a span on the active tracer; no-op when tracing is off.

    The returned object is a context manager whose ``as`` target
    supports ``.set(**attrs)`` either way, so call sites need no
    enabled/disabled branches of their own.
    """
    tracer = _ACTIVE
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **attributes)


# -- trace files --------------------------------------------------------------


def load_trace(path: str | Path) -> list[dict]:
    """Read a JSONL trace file back into span dicts.

    Tolerates a torn final line — the signature of a killed writer on
    an append-only trace file (the serving path's exporter) — the same
    way :func:`repro.obs.events.load_events` does.
    """
    spans = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            spans.append(json.loads(line))
        except json.JSONDecodeError:
            continue  # torn tail from a killed process
    return spans


def render_trace(spans: list[dict]) -> str:
    """Pretty-print a trace as an indented tree with timings."""
    by_parent: dict[str | None, list[dict]] = {}
    known = {span["span_id"] for span in spans}
    for span_ in spans:
        parent = span_["parent_id"]
        if parent not in known:
            parent = None  # orphaned span: promote to a root
        by_parent.setdefault(parent, []).append(span_)

    lines: list[str] = []

    def emit(span_: dict, indent: int) -> None:
        pad = "  " * indent
        duration = span_["duration_seconds"] * 1000.0
        attrs = ""
        if span_["attributes"]:
            rendered = ", ".join(
                f"{key}={value}" for key, value in sorted(span_["attributes"].items())
            )
            attrs = f"  [{rendered}]"
        status = "" if span_["status"] == "ok" else f"  !{span_['status']}"
        lines.append(f"{pad}{span_['name']}  {duration:.3f} ms{attrs}{status}")
        for child in by_parent.get(span_["span_id"], []):
            emit(child, indent + 1)

    for root in by_parent.get(None, []):
        emit(root, 0)
    return "\n".join(lines)
