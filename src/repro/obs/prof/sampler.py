"""Thread-based sampling stack profiler.

A :class:`StackSampler` runs a daemon thread that wakes ~100 times a
second, grabs the target threads' frames from
``sys._current_frames()``, and counts collapsed call stacks.  Sampling
never touches the profiled code: the only cost the workload pays is
the GIL time the sampling thread steals, which the overhead harness
(:func:`repro.obs.prof.sampler` via
:func:`repro.obs.overhead.measure_sampler_overhead`) holds under 2%.

When a :mod:`repro.obs.trace` tracer is active, each sample is
prefixed with the tracer's open span path (``query > inference > …``),
so one flamegraph shows both the logical phase and the Python frames
inside it — the span scoping the tentpole asks for.

Output is the collapsed-stack format flamegraph tooling shares
(``frame;frame;frame count`` per line), consumed directly by
:mod:`repro.obs.prof.flamegraph`.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import Counter
from pathlib import Path

from repro.obs import trace as obs_trace

#: Default sampling period: ~100 Hz.
DEFAULT_INTERVAL_SECONDS = 0.01


def _frame_label(frame) -> str:
    """``module.function`` for one frame (filename stem as fallback)."""
    module = frame.f_globals.get("__name__")
    if not module:
        module = Path(frame.f_code.co_filename).stem
    return f"{module}.{frame.f_code.co_name}"


def _collapse_frame_stack(frame) -> tuple[str, ...]:
    """Root-first tuple of frame labels for one thread's stack."""
    labels: list[str] = []
    while frame is not None:
        labels.append(_frame_label(frame))
        frame = frame.f_back
    labels.reverse()
    return tuple(labels)


class StackSampler:
    """Samples one thread's Python stack from a daemon thread.

    By default the thread that constructs the sampler is the target
    (the benchmark driver's main thread); pass ``all_threads=True`` to
    sample every live thread except the sampler's own.  Use as a
    context manager or via :meth:`start` / :meth:`stop`.
    """

    def __init__(
        self,
        interval_seconds: float = DEFAULT_INTERVAL_SECONDS,
        all_threads: bool = False,
        span_scoped: bool = True,
    ):
        if interval_seconds <= 0:
            raise ValueError("interval_seconds must be positive")
        self.interval_seconds = interval_seconds
        self.all_threads = all_threads
        self.span_scoped = span_scoped
        self._target_thread_id = threading.get_ident()
        self._counts: Counter[tuple[str, ...]] = Counter()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.sample_count = 0
        self.started_unix: float | None = None
        self.stopped_unix: float | None = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "StackSampler":
        if self._thread is not None:
            raise RuntimeError("sampler already started")
        self._stop.clear()
        self.started_unix = time.time()
        self._thread = threading.Thread(
            target=self._sample_loop, name="repro-prof-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        self.stopped_unix = time.time()

    def __enter__(self) -> "StackSampler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- sampling ----------------------------------------------------------

    def _span_prefix(self) -> tuple[str, ...]:
        """Open-span path of the active tracer (outermost first)."""
        if not self.span_scoped:
            return ()
        tracer = obs_trace.active_tracer()
        if tracer is None:
            return ()
        # The span stack belongs to the profiled thread; reading it
        # from the sampling thread is racy but safe (list of strings,
        # worst case one sample lands in the neighbouring span).
        return tuple(f"span:{span.name}" for span in tracer._stack)

    def _sample_once(self, own_thread_id: int) -> None:
        frames = sys._current_frames()
        prefix = self._span_prefix()
        stacks: list[tuple[str, ...]] = []
        if self.all_threads:
            for thread_id, frame in frames.items():
                if thread_id == own_thread_id:
                    continue
                stacks.append(_collapse_frame_stack(frame))
        else:
            frame = frames.get(self._target_thread_id)
            if frame is not None:
                stacks.append(_collapse_frame_stack(frame))
        with self._lock:
            for stack in stacks:
                self._counts[prefix + stack] += 1
            self.sample_count += len(stacks)

    def _sample_loop(self) -> None:
        own_thread_id = threading.get_ident()
        # Drift-corrected ticker: sleep toward the next absolute tick
        # so slow samples don't slide the effective rate down.
        next_tick = time.perf_counter() + self.interval_seconds
        while not self._stop.is_set():
            self._sample_once(own_thread_id)
            delay = next_tick - time.perf_counter()
            next_tick += self.interval_seconds
            if delay > 0:
                self._stop.wait(delay)
            else:  # fell behind: re-anchor rather than burst
                next_tick = time.perf_counter() + self.interval_seconds

    # -- output ------------------------------------------------------------

    def stack_counts(self) -> Counter:
        """Copy of the collapsed-stack sample counts (root-first keys)."""
        with self._lock:
            return Counter(self._counts)

    def merge_counts(self, counts: Counter | dict) -> None:
        """Fold another sampler's counts in (multi-campaign profiles)."""
        with self._lock:
            for stack, count in dict(counts).items():
                self._counts[tuple(stack)] += int(count)
                self.sample_count += int(count)

    def collapsed(self) -> str:
        """Collapsed-stack text: one ``frame;frame;frame count`` per line."""
        return collapse_counts(self.stack_counts())

    def write_collapsed(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.collapsed() + "\n")
        return path


def collapse_counts(counts: Counter | dict) -> str:
    """Render stack->count mapping as sorted collapsed-stack lines."""
    lines = [
        ";".join(stack) + f" {count}"
        for stack, count in sorted(dict(counts).items())
        if count
    ]
    return "\n".join(lines)


def parse_collapsed(text: str) -> Counter:
    """Parse collapsed-stack text back into a stack->count Counter."""
    counts: Counter[tuple[str, ...]] = Counter()
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        stack_text, _, count_text = line.rpartition(" ")
        if not stack_text or not count_text.isdigit():
            continue
        counts[tuple(stack_text.split(";"))] += int(count_text)
    return counts
