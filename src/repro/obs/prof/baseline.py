"""Perf-baseline store and noise-tolerant regression comparator.

``benchmarks/BASELINES.json`` records, per benchmark name, the metric
values a healthy run produces (``{bench: {metric: value}}``).  A later
run compares its metrics against the stored baselines with a ratio
threshold: a *regression* is a worse-than-baseline change beyond the
threshold, an *improvement* a better-than-baseline change beyond it,
anything inside the band is noise and passes.

Metric direction is inferred from the name: metrics ending in ``qps``,
``_throughput`` or ``_per_second`` are higher-is-better; everything
else (seconds, bytes, counts) is lower-is-better.  Tiny absolute
values are exempted via ``min_value`` — a 0.3 ms phase doubling to
0.6 ms is scheduler noise, not a regression worth gating on.

The comparator returns a :class:`BaselineComparison` whose ``ok``
property gates CI (``repro profile --baselines`` exits non-zero on any
regression) and renders as a markdown report for artifact tabs.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

BASELINE_SCHEMA_VERSION = 1

#: A change must exceed baseline × (1 ± threshold) to count; 0.2 is
#: the ≥20% gate the observatory promises.
DEFAULT_RATIO_THRESHOLD = 0.2

#: Metrics whose absolute value is below this are never flagged
#: (sub-millisecond timings are dominated by scheduler noise).
DEFAULT_MIN_VALUE = 1e-3

_HIGHER_IS_BETTER_SUFFIXES = ("qps", "_throughput", "_per_second")


def higher_is_better(metric: str) -> bool:
    return metric.endswith(_HIGHER_IS_BETTER_SUFFIXES)


@dataclass
class MetricDelta:
    """One metric's comparison against its baseline."""

    bench: str
    metric: str
    baseline: float
    current: float

    @property
    def ratio(self) -> float:
        if self.baseline == 0:
            return float("inf") if self.current else 1.0
        return self.current / self.baseline

    def describe(self) -> str:
        direction = "higher" if self.ratio >= 1.0 else "lower"
        return (
            f"{self.bench}:{self.metric} {self.baseline:.6g} -> "
            f"{self.current:.6g} ({self.ratio:.2f}x, {direction})"
        )


@dataclass
class BaselineComparison:
    """Outcome of comparing one run's metrics against the store."""

    ratio_threshold: float
    regressions: list[MetricDelta] = field(default_factory=list)
    improvements: list[MetricDelta] = field(default_factory=list)
    unchanged: list[MetricDelta] = field(default_factory=list)
    missing_baselines: list[tuple[str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions

    @property
    def compared(self) -> int:
        return len(self.regressions) + len(self.improvements) + len(self.unchanged)


def load_baselines(path: str | Path) -> dict:
    """Load ``{bench: {metric: value}}``; a missing file is empty."""
    path = Path(path)
    if not path.exists():
        return {}
    payload = json.loads(path.read_text())
    version = payload.get("schema_version")
    if version != BASELINE_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: baseline schema {version!r} is not supported "
            f"(expected {BASELINE_SCHEMA_VERSION})"
        )
    return payload.get("baselines", {})


def save_baselines(path: str | Path, baselines: dict, note: str = "") -> Path:
    """Write the baseline store as sorted JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema_version": BASELINE_SCHEMA_VERSION,
        "updated_unix": time.time(),
        "note": note,
        "baselines": {
            bench: {metric: float(value) for metric, value in sorted(metrics.items())}
            for bench, metrics in sorted(baselines.items())
        },
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def compare_to_baselines(
    current: dict,
    baselines: dict,
    ratio_threshold: float = DEFAULT_RATIO_THRESHOLD,
    min_value: float = DEFAULT_MIN_VALUE,
) -> BaselineComparison:
    """Compare ``{bench: {metric: value}}`` against the stored baselines.

    Metrics without a baseline are listed as missing (and pass) so a
    new benchmark can land before its first ``--update-baselines``.
    """
    comparison = BaselineComparison(ratio_threshold=ratio_threshold)
    for bench in sorted(current):
        for metric in sorted(current[bench]):
            value = float(current[bench][metric])
            baseline = baselines.get(bench, {}).get(metric)
            if baseline is None:
                comparison.missing_baselines.append((bench, metric))
                continue
            delta = MetricDelta(
                bench=bench, metric=metric, baseline=float(baseline), current=value
            )
            if max(abs(delta.baseline), abs(delta.current)) < min_value:
                comparison.unchanged.append(delta)
                continue
            worse = (
                delta.ratio < 1.0 - ratio_threshold
                if higher_is_better(metric)
                else delta.ratio > 1.0 + ratio_threshold
            )
            better = (
                delta.ratio > 1.0 + ratio_threshold
                if higher_is_better(metric)
                else delta.ratio < 1.0 - ratio_threshold
            )
            if worse:
                comparison.regressions.append(delta)
            elif better:
                comparison.improvements.append(delta)
            else:
                comparison.unchanged.append(delta)
    return comparison


def render_regression_markdown(comparison: BaselineComparison) -> str:
    """Markdown regression report (the CI artifact / PR comment body)."""
    lines = ["# Performance baseline comparison", ""]
    verdict = "PASS" if comparison.ok else "FAIL"
    lines.append(
        f"**{verdict}** — {comparison.compared} metrics compared at a "
        f"±{comparison.ratio_threshold * 100:.0f}% threshold: "
        f"{len(comparison.regressions)} regressions, "
        f"{len(comparison.improvements)} improvements, "
        f"{len(comparison.unchanged)} within noise, "
        f"{len(comparison.missing_baselines)} without baselines."
    )

    def table(deltas: list[MetricDelta]) -> list[str]:
        rows = [
            "",
            "| bench | metric | baseline | current | ratio |",
            "| --- | --- | ---: | ---: | ---: |",
        ]
        for delta in deltas:
            rows.append(
                f"| {delta.bench} | {delta.metric} | {delta.baseline:.6g} "
                f"| {delta.current:.6g} | {delta.ratio:.2f}x |"
            )
        return rows

    if comparison.regressions:
        lines.append("")
        lines.append("## Regressions")
        lines.extend(table(comparison.regressions))
    if comparison.improvements:
        lines.append("")
        lines.append("## Improvements")
        lines.extend(table(comparison.improvements))
    if comparison.missing_baselines:
        lines.append("")
        lines.append("## No baseline yet")
        lines.append("")
        for bench, metric in comparison.missing_baselines:
            lines.append(f"- `{bench}:{metric}` (run `--update-baselines` to record)")
    lines.append("")
    return "\n".join(lines)


def metrics_from_estimator_run(run) -> dict:
    """Phase-total metrics for one ``EstimatorRun`` (baseline currency).

    Duck-typed so cached runs loaded from disk work too.  Keys follow
    the lower-is-better convention the comparator infers from names.
    """
    return {
        "inference_seconds": run.total_inference_seconds(),
        "planning_seconds": run.total_planning_seconds(),
        "execution_seconds": run.total_execution_seconds(),
        "end_to_end_seconds": run.total_end_to_end_seconds(),
    }
