"""Per-phase wall / CPU / peak-memory attribution.

The paper's practicality story (Table 3, Figure 3) splits end-to-end
time into *inference*, *planning* and *execution*; the benchmark
driver already times those phases per query with ``perf_counter``.
This module deepens that split into a resource profile: for every
campaign phase — ``labelling`` (workload ground truth), ``inference``,
``planning``, ``execution`` — it records

- **wall seconds** (``time.perf_counter``),
- **CPU seconds of the running thread** (``time.thread_time``, so a
  blocked phase shows wall ≫ cpu), and
- **peak traced memory** (``tracemalloc`` peak delta, when the
  profiler owns tracing),

keyed by ``(estimator, phase)`` and aggregated across queries.  Fork
workers run their own profiler (inherited activation, fresh state per
task) and ship a :meth:`PhaseProfiler.dump` back with each result; the
parent merges dumps per worker, which is what splits the parallel
slowdown into *compute* (inside workers) vs *dispatch/idle* (the gap
between worker compute and the pool's wall time).

Module-level hooks follow the obs convention: :func:`phase` is a
shared no-op until :func:`activate` installs a profiler, so the
benchmark hot path pays one global read when profiling is off.
"""

from __future__ import annotations

import json
import time
import tracemalloc
from contextlib import contextmanager
from pathlib import Path

#: Canonical campaign phases, in pipeline order (used for rendering;
#: unknown phase names are accepted and sorted after these).
CAMPAIGN_PHASES = ("labelling", "inference", "planning", "execution")

#: Estimator key used for phases that run outside any estimator
#: (workload labelling happens before estimators exist).
WORKLOAD_SCOPE = "(workload)"


class PhaseStat:
    """Accumulated cost of one (estimator, phase) pair."""

    __slots__ = ("count", "wall_seconds", "cpu_seconds", "peak_bytes")

    def __init__(self):
        self.count = 0
        self.wall_seconds = 0.0
        self.cpu_seconds = 0.0
        self.peak_bytes = 0

    def add(self, wall: float, cpu: float, peak: int) -> None:
        self.count += 1
        self.wall_seconds += max(0.0, wall)
        self.cpu_seconds += max(0.0, cpu)
        self.peak_bytes = max(self.peak_bytes, max(0, peak))

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "peak_bytes": self.peak_bytes,
        }


class PhaseProfiler:
    """Collects phase stats; optionally owns tracemalloc while active.

    ``trace_memory=True`` (the default) starts ``tracemalloc`` if no
    one else is tracing and records the per-phase peak allocation
    delta; when another component already owns tracing, peaks are
    still read but tracing is left untouched on close.
    """

    def __init__(self, trace_memory: bool = True):
        self._stats: dict[tuple[str, str], PhaseStat] = {}
        self._workers: dict[str, dict] = {}
        self._parallel: dict | None = None
        self._owns_tracemalloc = False
        if trace_memory and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._owns_tracemalloc = True
        self._trace_memory = trace_memory

    def close(self) -> None:
        """Stop tracemalloc if this profiler started it."""
        if self._owns_tracemalloc and tracemalloc.is_tracing():
            tracemalloc.stop()
        self._owns_tracemalloc = False

    # -- recording ---------------------------------------------------------

    def _stat(self, estimator: str, phase: str) -> PhaseStat:
        key = (estimator or WORKLOAD_SCOPE, phase)
        stat = self._stats.get(key)
        if stat is None:
            stat = self._stats[key] = PhaseStat()
        return stat

    @contextmanager
    def phase(self, name: str, estimator: str = ""):
        """Time the enclosed block as one occurrence of ``name``."""
        tracing = self._trace_memory and tracemalloc.is_tracing()
        if tracing:
            tracemalloc.reset_peak()
            baseline_bytes, _ = tracemalloc.get_traced_memory()
        wall_started = time.perf_counter()
        cpu_started = time.thread_time()
        try:
            yield
        finally:
            wall = time.perf_counter() - wall_started
            cpu = time.thread_time() - cpu_started
            peak = 0
            if tracing:
                _, peak_bytes = tracemalloc.get_traced_memory()
                peak = peak_bytes - baseline_bytes
            self._stat(estimator, name).add(wall, cpu, peak)

    def record(
        self,
        name: str,
        estimator: str,
        wall_seconds: float,
        cpu_seconds: float = 0.0,
        peak_bytes: int = 0,
    ) -> None:
        """Record an externally measured phase occurrence."""
        self._stat(estimator, name).add(wall_seconds, cpu_seconds, peak_bytes)

    def note_worker(self, worker: int | str, dump: dict) -> None:
        """Fold one fork worker's dump in, keeping its per-worker totals."""
        self.merge(dump)
        entry = self._workers.setdefault(
            str(worker), {"tasks": 0, "compute_wall_seconds": 0.0, "cpu_seconds": 0.0}
        )
        entry["tasks"] += 1
        for stats in dump.get("phases", {}).values():
            for payload in stats.values():
                entry["compute_wall_seconds"] += payload.get("wall_seconds", 0.0)
                entry["cpu_seconds"] += payload.get("cpu_seconds", 0.0)

    def note_parallel_section(self, wall_seconds: float, workers: int) -> None:
        """Record the wall time of one parallel dispatch section.

        With the per-worker compute totals this is what makes the
        fork-pool slowdown diagnosable: ``dispatch_overhead_seconds``
        is pool wall-clock × workers minus the compute that actually
        happened inside the workers — time lost to queueing, pickling
        and idle waiting.
        """
        self._parallel = {
            "wall_seconds": max(0.0, wall_seconds),
            "workers": max(1, int(workers)),
        }

    # -- views / transport -------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-serializable per-estimator, per-phase profile."""
        phases: dict[str, dict[str, dict]] = {}
        for (estimator, phase), stat in sorted(self._stats.items()):
            phases.setdefault(estimator, {})[phase] = stat.to_dict()
        view: dict = {"phases": phases}
        if self._workers:
            view["workers"] = {
                worker: dict(entry) for worker, entry in sorted(self._workers.items())
            }
        if self._parallel is not None:
            compute = sum(
                entry["compute_wall_seconds"] for entry in self._workers.values()
            )
            capacity = self._parallel["wall_seconds"] * self._parallel["workers"]
            view["parallel"] = {
                **self._parallel,
                "compute_wall_seconds": compute,
                "dispatch_overhead_seconds": max(0.0, capacity - compute),
            }
        return view

    def dump(self) -> dict:
        """Lossless transport form (same shape as :meth:`snapshot`)."""
        return self.snapshot()

    def merge(self, dump: dict) -> None:
        """Fold another profiler's dump into this one."""
        for estimator, stats in dump.get("phases", {}).items():
            for phase, payload in stats.items():
                stat = self._stat(estimator, phase)
                stat.count += payload.get("count", 0)
                stat.wall_seconds += payload.get("wall_seconds", 0.0)
                stat.cpu_seconds += payload.get("cpu_seconds", 0.0)
                stat.peak_bytes = max(stat.peak_bytes, payload.get("peak_bytes", 0))

    def reset(self) -> None:
        self._stats.clear()
        self._workers.clear()
        self._parallel = None


# -- module-level profiler -----------------------------------------------------

_ACTIVE: PhaseProfiler | None = None


def active_profiler() -> PhaseProfiler | None:
    return _ACTIVE


def is_active() -> bool:
    return _ACTIVE is not None


def activate(profiler: PhaseProfiler | None = None) -> PhaseProfiler:
    """Install ``profiler`` (or a fresh one) as the process profiler."""
    global _ACTIVE
    if _ACTIVE is not None:
        _ACTIVE.close()
    _ACTIVE = profiler or PhaseProfiler()
    return _ACTIVE


def deactivate() -> None:
    global _ACTIVE
    if _ACTIVE is not None:
        _ACTIVE.close()
    _ACTIVE = None


@contextmanager
def use_profiler(profiler: PhaseProfiler | None = None):
    """Scoped activation: ``with use_profiler() as prof: ...``."""
    installed = activate(profiler)
    try:
        yield installed
    finally:
        deactivate()


class _NullPhase:
    __slots__ = ()

    def __enter__(self) -> "_NullPhase":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_PHASE = _NullPhase()


def phase(name: str, estimator: str = ""):
    """Profile the enclosed block; no-op when profiling is off."""
    profiler = _ACTIVE
    if profiler is None:
        return _NULL_PHASE
    return profiler.phase(name, estimator=estimator)


# -- rendering / files ---------------------------------------------------------


def _phase_order(name: str) -> tuple:
    try:
        return (CAMPAIGN_PHASES.index(name), name)
    except ValueError:
        return (len(CAMPAIGN_PHASES), name)


def render_phase_table(view: dict) -> str:
    """Human-readable per-estimator phase table from a snapshot."""
    lines: list[str] = []
    header = (
        f"{'estimator':<16} {'phase':<12} {'count':>6} "
        f"{'wall s':>10} {'cpu s':>10} {'peak MiB':>9}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for estimator in sorted(view.get("phases", {})):
        stats = view["phases"][estimator]
        for name in sorted(stats, key=_phase_order):
            payload = stats[name]
            lines.append(
                f"{estimator:<16} {name:<12} {payload['count']:>6} "
                f"{payload['wall_seconds']:>10.4f} {payload['cpu_seconds']:>10.4f} "
                f"{payload['peak_bytes'] / 1048576.0:>9.2f}"
            )
    parallel = view.get("parallel")
    if parallel:
        lines.append("")
        lines.append(
            f"parallel section: {parallel['wall_seconds']:.3f}s wall x "
            f"{parallel['workers']} workers, "
            f"{parallel['compute_wall_seconds']:.3f}s worker compute, "
            f"{parallel['dispatch_overhead_seconds']:.3f}s dispatch/idle"
        )
    for worker, entry in sorted(view.get("workers", {}).items()):
        lines.append(
            f"  worker {worker}: {entry['tasks']} tasks, "
            f"{entry['compute_wall_seconds']:.3f}s wall, "
            f"{entry['cpu_seconds']:.3f}s cpu"
        )
    return "\n".join(lines)


def write_phase_profile(path: str | Path, view: dict) -> Path:
    """Write a snapshot as sorted JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(view, indent=2, sort_keys=True) + "\n")
    return path


def load_phase_profile(path: str | Path) -> dict:
    return json.loads(Path(path).read_text())
