"""Self-contained flamegraph HTML over collapsed stacks.

Renders the classic icicle layout (roots on top, callees below, width
proportional to samples) as one static HTML file: nested absolutely
positioned ``<div>``s, inline CSS, and a dozen lines of vanilla
JavaScript for click-to-zoom — no external assets, openable from disk
or a CI artifact tab, exactly like :mod:`repro.obs.dashboard`.

Input is whatever :meth:`StackSampler.stack_counts` produced (or any
``{("a","b","c"): count}`` mapping / collapsed-stack text re-parsed by
:func:`repro.obs.prof.sampler.parse_collapsed`).
"""

from __future__ import annotations

import html
import time
import zlib
from collections import Counter
from pathlib import Path

#: Frames narrower than this fraction of the root are pruned from the
#: HTML (they would render as invisible slivers and bloat the file).
_MIN_FRACTION = 0.002

#: Deterministic warm palette cycled by depth + name hash.
_PALETTE = (
    "#d9534f", "#e0673f", "#e67e33", "#eb9430", "#eda93a",
    "#edbd4e", "#d9b23c", "#c8a232", "#e3742f", "#dd5f3b",
)


class _Node:
    __slots__ = ("name", "count", "children")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.children: dict[str, _Node] = {}

    def child(self, name: str) -> "_Node":
        node = self.children.get(name)
        if node is None:
            node = self.children[name] = _Node(name)
        return node


def _build_tree(counts: dict) -> _Node:
    root = _Node("all")
    for stack, count in counts.items():
        count = int(count)
        if count <= 0:
            continue
        root.count += count
        node = root
        for frame in stack:
            node = node.child(frame)
            node.count += count
    return root


def _color(name: str, depth: int) -> str:
    # crc32 keeps colors stable across processes (hash() is salted).
    return _PALETTE[(zlib.crc32(name.encode()) ^ depth) % len(_PALETTE)]


def _render_node(
    node: _Node, depth: int, left: float, total: int, lines: list[str]
) -> None:
    width = 100.0 * node.count / total
    if node.count / total < _MIN_FRACTION:
        return
    label = html.escape(node.name)
    percent = 100.0 * node.count / total
    lines.append(
        f'<div class="frame" style="left:{left:.4f}%;top:{depth * 17}px;'
        f"width:{width:.4f}%;background:{_color(node.name, depth)}\" "
        f'title="{label} — {node.count} samples ({percent:.1f}%)">'
        f"<span>{label}</span></div>"
    )
    child_left = left
    for child in sorted(node.children.values(), key=lambda c: (-c.count, c.name)):
        _render_node(child, depth + 1, child_left, total, lines)
        child_left += 100.0 * child.count / total


def _depth(node: _Node) -> int:
    if not node.children:
        return 1
    return 1 + max(_depth(child) for child in node.children.values())


_STYLE = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 72rem; color: #1a2330; }
h1 { font-size: 1.3rem; }
.muted { color: #68727f; font-size: 0.85rem; }
#graph { position: relative; width: 100%; }
.frame { position: absolute; height: 16px; box-sizing: border-box;
         border: 1px solid rgba(255,255,255,0.55); border-radius: 2px;
         overflow: hidden; white-space: nowrap; cursor: pointer;
         font-size: 11px; line-height: 14px; color: #2b1500; }
.frame span { padding-left: 3px; pointer-events: none; }
.frame:hover { filter: brightness(1.12); }
"""

_SCRIPT = """
// Click-to-zoom: scale horizontally so the clicked frame spans the
// full width; click the background (or the root) to reset.
const graph = document.getElementById('graph');
graph.addEventListener('click', (event) => {
  const frame = event.target.closest('.frame');
  const reset = !frame || frame === graph.firstElementChild;
  const left = reset ? 0 : parseFloat(frame.dataset.left ?? frame.style.left);
  const width = reset ? 100 : parseFloat(frame.dataset.width ?? frame.style.width);
  for (const el of graph.children) {
    el.dataset.left ??= el.style.left;
    el.dataset.width ??= el.style.width;
    const elLeft = parseFloat(el.dataset.left);
    const elWidth = parseFloat(el.dataset.width);
    const newLeft = (elLeft - left) * (100 / width);
    const newWidth = elWidth * (100 / width);
    el.style.left = newLeft + '%';
    el.style.width = newWidth + '%';
    el.style.visibility =
      (newLeft + newWidth <= 0 || newLeft >= 100) ? 'hidden' : 'visible';
  }
});
"""


def render_flamegraph_html(
    counts: Counter | dict,
    title: str = "repro flamegraph",
    subtitle: str = "",
) -> str:
    """Render collapsed-stack counts as one self-contained HTML page."""
    counts = {tuple(stack): count for stack, count in dict(counts).items()}
    tree = _build_tree(counts)
    body: list[str] = [f"<h1>{html.escape(title)}</h1>"]
    if subtitle:
        body.append(f'<p class="muted">{html.escape(subtitle)}</p>')
    if tree.count == 0:
        body.append("<p>No samples recorded.</p>")
        graph_height = 0
    else:
        lines: list[str] = []
        _render_node(tree, 0, 0.0, tree.count, lines)
        graph_height = _depth(tree) * 17 + 4
        body.append(
            f'<p class="muted">{tree.count} samples — click a frame to zoom, '
            "the background to reset.</p>"
        )
        body.append(
            f'<div id="graph" style="height:{graph_height}px">'
            + "".join(lines)
            + "</div>"
        )
        body.append(f"<script>{_SCRIPT}</script>")
    generated = time.strftime("%Y-%m-%d %H:%M:%S")
    body.append(f'<p class="muted">Generated {generated}.</p>')
    return (
        "<!doctype html>\n<html><head><meta charset='utf-8'>"
        f"<title>{html.escape(title)}</title><style>{_STYLE}</style></head>\n"
        "<body>\n" + "\n".join(body) + "\n</body></html>\n"
    )


def write_flamegraph(
    path: str | Path,
    counts: Counter | dict,
    title: str = "repro flamegraph",
    subtitle: str = "",
) -> Path:
    """Render and write the flamegraph HTML; returns the output path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_flamegraph_html(counts, title=title, subtitle=subtitle))
    return path
