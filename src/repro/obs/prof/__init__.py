"""Continuous profiling + performance-regression observatory.

The rest of :mod:`repro.obs` answers *what happened* (spans, events,
metrics); this subpackage answers *where the time and memory went* and
*whether a change made things slower*:

- :mod:`repro.obs.prof.sampler` — a thread-based sampling stack
  profiler (~100 Hz over ``sys._current_frames()``), span-scoped when a
  tracer is active, emitting collapsed-stack output,
- :mod:`repro.obs.prof.flamegraph` — a self-contained flamegraph HTML
  renderer over collapsed stacks (no external assets),
- :mod:`repro.obs.prof.phases` — per-phase wall / CPU / peak-memory
  attribution (labelling, inference, planning, execution), recorded
  per estimator and mergeable across fork workers,
- :mod:`repro.obs.prof.baseline` — a perf-baseline store
  (``benchmarks/BASELINES.json``) and a noise-tolerant comparator that
  turns timing drift into a gating markdown regression report.

Like every other obs module, the hooks are no-ops until activated, so
profiling costs one global read on unprofiled runs.
"""

from repro.obs.prof.baseline import (
    BaselineComparison,
    compare_to_baselines,
    load_baselines,
    render_regression_markdown,
    save_baselines,
)
from repro.obs.prof.flamegraph import render_flamegraph_html, write_flamegraph
from repro.obs.prof.phases import PhaseProfiler
from repro.obs.prof.sampler import StackSampler

__all__ = [
    "BaselineComparison",
    "PhaseProfiler",
    "StackSampler",
    "compare_to_baselines",
    "load_baselines",
    "render_flamegraph_html",
    "render_regression_markdown",
    "save_baselines",
    "write_flamegraph",
]
