"""Observability: tracing, metrics, events, live progress (``repro.obs``).

Dependency-free instrumentation for the benchmark platform:

- :mod:`repro.obs.trace` — hierarchical spans with a JSONL exporter,
- :mod:`repro.obs.metrics` — process-wide counters/gauges/histograms,
- :mod:`repro.obs.events` — leveled, run-scoped JSONL structured events,
- :mod:`repro.obs.progress` — live campaign progress, Prometheus-text
  export and an optional stdlib HTTP ``/metrics`` + ``/progress`` +
  ``/healthz`` endpoint,
- :mod:`repro.obs.blame` — misestimation attribution: which sub-plan
  estimates caused a bad plan,
- :mod:`repro.obs.dashboard` — self-contained HTML campaign report,
- :mod:`repro.obs.manifest` — machine-readable ``run_manifest.json``,
- :mod:`repro.obs.overhead` — self-measurement of instrumentation cost,
- :mod:`repro.obs.prof` — continuous profiling (sampling stack
  profiler + flamegraphs, per-phase wall/CPU/memory attribution) and
  the performance-regression observatory (``benchmarks/BASELINES.json``
  + comparator behind ``repro profile``).

Everything is **off by default**: :func:`repro.obs.trace.span`,
:func:`repro.obs.events.emit` and the progress hooks are shared no-ops
until activated, so instrumented hot paths cost one global read when
disabled.
"""

from repro.obs.metrics import MetricsRegistry, registry
from repro.obs.trace import (
    Span,
    Tracer,
    activate,
    active_tracer,
    deactivate,
    is_active,
    load_trace,
    render_trace,
    span,
    use_tracer,
)

__all__ = [
    "MetricsRegistry",
    "Span",
    "Tracer",
    "activate",
    "active_tracer",
    "deactivate",
    "is_active",
    "load_trace",
    "registry",
    "render_trace",
    "span",
    "use_tracer",
]
