"""Observability: tracing, metrics and run manifests (``repro.obs``).

Dependency-free instrumentation for the benchmark platform:

- :mod:`repro.obs.trace` — hierarchical spans with a JSONL exporter,
- :mod:`repro.obs.metrics` — process-wide counters/gauges/histograms,
- :mod:`repro.obs.manifest` — machine-readable ``run_manifest.json``,
- :mod:`repro.obs.overhead` — self-measurement of instrumentation cost.

Tracing is **off by default**: :func:`repro.obs.trace.span` is a shared
no-op until a tracer is activated, so instrumented hot paths cost one
global read when disabled.
"""

from repro.obs.metrics import MetricsRegistry, registry
from repro.obs.trace import (
    Span,
    Tracer,
    activate,
    active_tracer,
    deactivate,
    is_active,
    load_trace,
    render_trace,
    span,
    use_tracer,
)

__all__ = [
    "MetricsRegistry",
    "Span",
    "Tracer",
    "activate",
    "active_tracer",
    "deactivate",
    "is_active",
    "load_trace",
    "registry",
    "render_trace",
    "span",
    "use_tracer",
]
