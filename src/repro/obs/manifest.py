"""Machine-readable run manifests (``run_manifest.json``).

A manifest captures everything needed to interpret one benchmark or
experiment campaign after the fact:

- ``config`` — the driver's configuration dict,
- ``runs`` — per-estimator, per-query phase timings (inference,
  planning, execution), abort flags and trace links,
- ``metrics`` — a :mod:`repro.obs.metrics` snapshot (operator row
  counters, planner search effort, abort counts),
- ``trace_file`` — the companion JSONL trace, when one was exported.

Drivers that build :class:`~repro.core.benchmark.EstimatorRun` objects
indirectly (the experiment context's disk-cached evaluation passes, the
pytest benchmark suite) register them with the module-level collector
(:func:`enable_collection` / :func:`collect_run`), then call
:func:`write_run_manifest` once at the end of the session.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.obs import metrics
from repro.obs.prof import phases as prof_phases

#: Version 2 adds the ``events_file`` link and guarantees sorted JSON
#: keys; readers (dashboard, blame tooling) use :func:`load_run_manifest`
#: to reject artifacts written by incompatible revisions.
MANIFEST_SCHEMA_VERSION = 2

#: Versions current readers can still interpret (v1 lacked
#: ``events_file`` and key ordering, both of which readers tolerate).
_COMPATIBLE_SCHEMA_VERSIONS = (1, 2)

#: Session accumulator: (label, EstimatorRun) pairs noted while
#: collection is enabled.  Duck-typed to avoid a core -> obs -> core
#: import cycle.
_COLLECTED: list[tuple[str, object]] = []
_COLLECTING = False


def enable_collection() -> None:
    """Start noting estimator runs for a later manifest."""
    global _COLLECTING
    _COLLECTING = True


def disable_collection() -> None:
    global _COLLECTING
    _COLLECTING = False
    _COLLECTED.clear()


def collecting() -> bool:
    return _COLLECTING


def collect_run(label: str, run) -> None:
    """Note one :class:`EstimatorRun` if collection is enabled."""
    if _COLLECTING:
        _COLLECTED.append((label, run))


def collected_runs() -> list[tuple[str, object]]:
    return list(_COLLECTED)


def _query_entry(query_run) -> dict:
    return {
        "query": query_run.query_name,
        "num_tables": query_run.num_tables,
        "inference_seconds": query_run.inference_seconds,
        "planning_seconds": query_run.planning_seconds,
        "execution_seconds": query_run.execution_seconds,
        "aborted": query_run.aborted,
        "p_error": query_run.p_error,
        "trace_id": query_run.trace_id,
        # Resilience outcome (older EstimatorRun payloads loaded from
        # disk caches may predate these fields — default to no-fault).
        "failed": getattr(query_run, "failed", False),
        "error": getattr(query_run, "error", None),
        "attempts": getattr(query_run, "attempts", 1),
        "fallback_estimates": getattr(query_run, "fallback_estimates", 0),
    }


def _run_entry(label: str, run) -> dict:
    return {
        "label": label,
        "estimator": run.estimator_name,
        "workload": run.workload_name,
        "aborted_count": run.aborted_count,
        "failed_count": getattr(run, "failed_count", 0),
        "totals": {
            "inference_seconds": run.total_inference_seconds(),
            "planning_seconds": run.total_planning_seconds(),
            "execution_seconds": run.total_execution_seconds(),
        },
        "queries": [_query_entry(query_run) for query_run in run.query_runs],
    }


def run_manifest(
    config: dict,
    runs: list[tuple[str, object]] | None = None,
    *,
    trace_file: str | None = None,
    checkpoint_file: str | None = None,
    events_file: str | None = None,
    extra: dict | None = None,
) -> dict:
    """Assemble a manifest dict from config + runs + current metrics.

    ``runs`` defaults to whatever the module collector accumulated.
    ``checkpoint_file`` links the campaign's resilience checkpoint
    (JSONL of completed QueryRuns) and ``events_file`` the structured
    event log, the way ``trace_file`` links the span tree.
    """
    if runs is None:
        runs = collected_runs()
    profiler = prof_phases.active_profiler()
    manifest = {
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "created_unix": time.time(),
        "config": config,
        "runs": [_run_entry(label, run) for label, run in runs],
        "metrics": metrics.snapshot(),
        "trace_file": trace_file,
        "checkpoint_file": checkpoint_file,
        "events_file": events_file,
        # Per-estimator wall/CPU/peak-memory phase attribution, present
        # when a phase profiler was active (``repro profile`` /
        # ``repro bench --profile``).  Additive and optional, so the
        # schema version is unchanged and old readers stay compatible.
        "phase_profile": profiler.snapshot() if profiler is not None else None,
    }
    if extra:
        manifest.update(extra)
    return manifest


def write_run_manifest(
    path: str | Path,
    config: dict,
    runs: list[tuple[str, object]] | None = None,
    *,
    trace_file: str | None = None,
    checkpoint_file: str | None = None,
    events_file: str | None = None,
    extra: dict | None = None,
) -> Path:
    """Write :func:`run_manifest` output as JSON and return the path.

    Keys are sorted so two manifests of the same campaign are
    byte-comparable (dict iteration order never leaks into artifacts).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    manifest = run_manifest(
        config,
        runs,
        trace_file=trace_file,
        checkpoint_file=checkpoint_file,
        events_file=events_file,
        extra=extra,
    )
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True, default=str) + "\n")
    return path


def load_run_manifest(path: str | Path) -> dict:
    """Read a manifest back, rejecting incompatible schema versions.

    The dashboard and blame tooling load artifacts through this
    function so a manifest written by a future (or corrupted) revision
    fails loudly instead of being half-interpreted.
    """
    payload = json.loads(Path(path).read_text())
    version = payload.get("schema_version")
    if version not in _COMPATIBLE_SCHEMA_VERSIONS:
        raise ValueError(
            f"{path}: manifest schema {version!r} is not supported "
            f"(compatible: {list(_COMPATIBLE_SCHEMA_VERSIONS)})"
        )
    return payload
