"""Structured, run-scoped event log (JSONL).

Where :mod:`repro.obs.trace` answers *"where did the time go inside
one query"*, the event log answers *"what happened to the campaign"*:
one append-only JSONL file per run, one JSON object per line, each
carrying a wall-clock timestamp, a severity level, an event name and
whatever context was bound when it was emitted (campaign, estimator,
query — attached automatically via :func:`context`).

Design rules, mirroring the tracer:

- **No-op when disabled.**  :func:`emit` is a single global read until
  an :class:`EventLog` is activated, so instrumented call sites
  (benchmark driver, retry path, executor abort path) stay free on
  untelemetered runs.
- **Durable per line.**  Every event is written and flushed as one
  ``\\n``-terminated line, so a campaign killed at any instant leaves a
  readable log; :func:`load_events` skips a torn final line the same
  way checkpoint resume does.
- **Process-local.**  Forked benchmark workers deactivate the
  inherited log (see :mod:`repro.core.parallel`); the parent emits
  completion events from the streamed worker messages instead, keeping
  one writer per file.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from pathlib import Path

#: Severity ranks; events below the log's threshold are dropped.
LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}


class EventLog:
    """Append-only JSONL event sink with bound context fields."""

    def __init__(
        self,
        path: str | Path,
        level: str = "info",
        clock=time.time,
    ):
        if level not in LEVELS:
            raise ValueError(f"unknown level {level!r} (choose from {sorted(LEVELS)})")
        self.path = Path(path)
        self.level = level
        self._threshold = LEVELS[level]
        self._clock = clock
        self._context: dict = {}
        self._count = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("a", encoding="utf-8")

    @property
    def count(self) -> int:
        """Events written by this log instance."""
        return self._count

    @property
    def context_fields(self) -> dict:
        return dict(self._context)

    def bind(self, **fields) -> None:
        """Attach context fields to every subsequent event."""
        self._context.update(fields)

    def unbind(self, *names: str) -> None:
        for name in names:
            self._context.pop(name, None)

    def emit(self, event: str, level: str = "info", **fields) -> None:
        """Write one event line (dropped when below the log's level)."""
        rank = LEVELS.get(level)
        if rank is None:
            raise ValueError(f"unknown level {level!r}")
        if rank < self._threshold or self._handle is None:
            return
        record = {"ts": self._clock(), "level": level, "event": event}
        if self._context:
            record.update(self._context)
        if fields:
            record.update(fields)
        self._handle.write(json.dumps(record, default=str) + "\n")
        self._handle.flush()
        self._count += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# -- module-level sink --------------------------------------------------------

_ACTIVE: EventLog | None = None


def active_log() -> EventLog | None:
    """The installed event log, or ``None`` when logging is off."""
    return _ACTIVE


def is_active() -> bool:
    return _ACTIVE is not None


def activate(log: EventLog | str | Path, level: str = "info") -> EventLog:
    """Install ``log`` (or open one at the given path) process-wide."""
    global _ACTIVE
    if not isinstance(log, EventLog):
        log = EventLog(log, level=level)
    _ACTIVE = log
    return log


def deactivate(close: bool = True) -> None:
    """Uninstall the active log (closing it unless ``close=False``).

    ``close=False`` exists for forked workers: they must drop the
    inherited log without closing the parent's file descriptor.
    """
    global _ACTIVE
    if _ACTIVE is not None and close:
        _ACTIVE.close()
    _ACTIVE = None


@contextmanager
def use_event_log(path: str | Path, level: str = "info"):
    """Scoped activation: ``with use_event_log(p) as log: ...``."""
    log = activate(path, level=level)
    try:
        yield log
    finally:
        deactivate()


def emit(event: str, level: str = "info", **fields) -> None:
    """Emit on the active log; no-op when event logging is off."""
    log = _ACTIVE
    if log is not None:
        log.emit(event, level=level, **fields)


@contextmanager
def context(**fields):
    """Bind context fields on the active log for the enclosed block.

    A no-op when logging is off.  Previous values of the same keys are
    restored on exit, so nested scopes (campaign > query) compose.
    """
    log = _ACTIVE
    if log is None:
        yield
        return
    previous = {name: log._context.get(name, _MISSING) for name in fields}
    log.bind(**fields)
    try:
        yield
    finally:
        # The active log may have changed (e.g. a nested use_event_log
        # scope ended); restore on the one we bound to.
        for name, value in previous.items():
            if value is _MISSING:
                log.unbind(name)
            else:
                log.bind(**{name: value})


_MISSING = object()


# -- event files --------------------------------------------------------------


def load_events(path: str | Path, min_level: str = "debug") -> list[dict]:
    """Read a JSONL event file back into dicts, tolerating torn tails.

    A truncated final line (the signature of a killed writer) is
    skipped, as are blank lines; everything before it is intact because
    events are flushed whole.  ``min_level`` filters on read.
    """
    threshold = LEVELS[min_level]
    events: list[dict] = []
    event_path = Path(path)
    if not event_path.exists():
        return events
    with event_path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail from a killed process
            if LEVELS.get(record.get("level", "info"), 20) >= threshold:
                events.append(record)
    return events


def render_events(events: list[dict], limit: int | None = None) -> str:
    """Human-readable one-line-per-event rendering (newest last)."""
    if limit is not None:
        events = events[-limit:]
    lines = []
    for record in events:
        ts = time.strftime("%H:%M:%S", time.localtime(record.get("ts", 0)))
        level = record.get("level", "info").upper()
        name = record.get("event", "?")
        extras = ", ".join(
            f"{key}={value}"
            for key, value in sorted(record.items())
            if key not in ("ts", "level", "event")
        )
        lines.append(f"{ts} {level:7s} {name}" + (f"  [{extras}]" if extras else ""))
    return "\n".join(lines)
