"""Self-measurement of instrumentation overhead.

The observability layer promises to be zero-cost-when-disabled: with no
active tracer, :meth:`Executor.execute` takes the same uninstrumented
walk as before the layer existed, plus one dispatch branch.  This
module measures that promise so the ``BENCH_obs_overhead.json``
micro-benchmark (and its tier-1 test) can hold future PRs to it.

Three modes are timed with best-of-``repeats`` (min suppresses
scheduler noise the way the benchmark's own repetition loop does):

- ``bare``     — the raw plan walk, bypassing the ``execute()``
  dispatch entirely (the pre-observability baseline),
- ``disabled`` — ``execute()`` with tracing off (the default mode
  every tier-1 timing runs under),
- ``enabled``  — ``execute(collect_stats=True)`` under an active
  tracer, per-node spans and stats included.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.engine.database import Database
from repro.engine.executor import Executor
from repro.engine.plans import JOIN_HASH, JoinNode, PlanNode, ScanNode
from repro.obs import trace as obs_trace


def default_overhead_plan(database: Database) -> PlanNode:
    """A two-way hash join over the database's first join edge.

    Deterministic and filter-free, so repeated executions do identical
    work — exactly what an overhead comparison needs.
    """
    edge = database.join_graph.edges[0]
    left = ScanNode(tables=frozenset((edge.left,)), table=edge.left)
    right = ScanNode(tables=frozenset((edge.right,)), table=edge.right)
    return JoinNode(
        tables=frozenset((edge.left, edge.right)),
        left=left,
        right=right,
        edge=edge,
        method=JOIN_HASH,
    )


def _best_of(fn: Callable[[], object], repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
    return best


def measure_overhead(
    database: Database,
    plan: PlanNode | None = None,
    repeats: int = 30,
    warmup: int = 3,
) -> dict:
    """Time bare / disabled / enabled executions of ``plan``.

    Returns a JSON-serializable report with best-of times and relative
    overheads (``overhead_disabled`` is disabled-vs-bare, the number
    the < 2% budget applies to).
    """
    if obs_trace.is_active():
        raise RuntimeError("measure_overhead must start with tracing disabled")
    executor = Executor(database)
    plan = plan if plan is not None else default_overhead_plan(database)

    for _ in range(warmup):
        executor.execute(plan)

    # ``bare`` deliberately reaches into the executor's uninstrumented
    # walk: it is the seed-equivalent code path with even the
    # execute() dispatch branch removed.
    bare = _best_of(lambda: executor._run(plan, {}, None), repeats)
    disabled = _best_of(lambda: executor.execute(plan), repeats)
    with obs_trace.use_tracer():
        enabled = _best_of(
            lambda: executor.execute(plan, collect_stats=True), repeats
        )

    return {
        "repeats": repeats,
        "plan_tables": sorted(plan.tables),
        "bare_seconds": bare,
        "disabled_seconds": disabled,
        "enabled_seconds": enabled,
        "overhead_disabled": disabled / bare - 1.0,
        "overhead_enabled": enabled / bare - 1.0,
    }
