"""Self-measurement of instrumentation overhead.

The observability layer promises to be zero-cost-when-disabled: with no
active tracer, :meth:`Executor.execute` takes the same uninstrumented
walk as before the layer existed, plus one dispatch branch.  This
module measures that promise so the ``BENCH_obs_overhead.json``
micro-benchmark (and its tier-1 test) can hold future PRs to it.

Three modes are timed with best-of-``repeats`` (min suppresses
scheduler noise the way the benchmark's own repetition loop does):

- ``bare``     — the raw plan walk, bypassing the ``execute()``
  dispatch entirely (the pre-observability baseline),
- ``disabled`` — ``execute()`` with tracing off (the default mode
  every tier-1 timing runs under),
- ``enabled``  — ``execute(collect_stats=True)`` under an active
  tracer, per-node spans and stats included.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Callable

from repro.engine.database import Database
from repro.engine.executor import Executor
from repro.engine.plans import JOIN_HASH, JoinNode, PlanNode, ScanNode
from repro.obs import events as obs_events
from repro.obs import progress as obs_progress
from repro.obs import trace as obs_trace


def default_overhead_plan(database: Database) -> PlanNode:
    """A two-way hash join over the database's first join edge.

    Deterministic and filter-free, so repeated executions do identical
    work — exactly what an overhead comparison needs.
    """
    edge = database.join_graph.edges[0]
    left = ScanNode(tables=frozenset((edge.left,)), table=edge.left)
    right = ScanNode(tables=frozenset((edge.right,)), table=edge.right)
    return JoinNode(
        tables=frozenset((edge.left, edge.right)),
        left=left,
        right=right,
        edge=edge,
        method=JOIN_HASH,
    )


def _best_of(fn: Callable[[], object], repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
    return best


def measure_overhead(
    database: Database,
    plan: PlanNode | None = None,
    repeats: int = 30,
    warmup: int = 3,
) -> dict:
    """Time bare / disabled / enabled executions of ``plan``.

    Returns a JSON-serializable report with best-of times and relative
    overheads (``overhead_disabled`` is disabled-vs-bare, the number
    the < 2% budget applies to).
    """
    if obs_trace.is_active():
        raise RuntimeError("measure_overhead must start with tracing disabled")
    executor = Executor(database)
    plan = plan if plan is not None else default_overhead_plan(database)

    for _ in range(warmup):
        executor.execute(plan)

    # ``bare`` deliberately reaches into the executor's uninstrumented
    # walk: it is the seed-equivalent code path with even the
    # execute() dispatch branch removed.
    bare = _best_of(lambda: executor._run(plan, {}, None), repeats)
    disabled = _best_of(lambda: executor.execute(plan), repeats)
    with obs_trace.use_tracer():
        enabled = _best_of(
            lambda: executor.execute(plan, collect_stats=True), repeats
        )

    return {
        "repeats": repeats,
        "plan_tables": sorted(plan.tables),
        "bare_seconds": bare,
        "disabled_seconds": disabled,
        "enabled_seconds": enabled,
        "overhead_disabled": disabled / bare - 1.0,
        "overhead_enabled": enabled / bare - 1.0,
    }


def campaign_overhead_plan(database: Database) -> PlanNode:
    """A three-way chain hash join — campaign-query-representative.

    Campaign queries are multi-way joins, so the live-telemetry budget
    is judged against one rather than the minimal two-way join
    :func:`default_overhead_plan` uses for the disabled-mode check.
    """
    edges = database.join_graph.edges
    first = edges[0]
    chained = next(
        edge
        for edge in edges[1:]
        if {edge.left, edge.right} & {first.left, first.right}
    )
    left = ScanNode(tables=frozenset((first.left,)), table=first.left)
    right = ScanNode(tables=frozenset((first.right,)), table=first.right)
    join = JoinNode(
        tables=frozenset((first.left, first.right)),
        left=left,
        right=right,
        edge=first,
        method=JOIN_HASH,
    )
    third = (
        chained.left if chained.left not in join.tables else chained.right
    )
    return JoinNode(
        tables=join.tables | {third},
        left=join,
        right=ScanNode(tables=frozenset((third,)), table=third),
        edge=chained,
        method=JOIN_HASH,
    )


class _OverheadRun:
    """Minimal QueryRun stand-in for the progress tracker."""

    failed = False
    aborted = False


def measure_live_overhead(
    database: Database,
    plan: PlanNode | None = None,
    repeats: int = 30,
    warmup: int = 3,
    artifact_dir: str | None = None,
) -> dict:
    """Time per-query cycles with live telemetry on vs off.

    A "cycle" is what the benchmark driver pays per query with
    ``--events-out``/``--progress-out`` enabled: the plan execution plus
    the telemetry the driver adds around it (``query.start`` /
    ``query.completed`` events, a progress-tracker update, and the
    throttled Prometheus snapshot write).  ``overhead_live`` is the
    relative cost of that telemetry, the number the < 2% budget in
    ``BENCH_obs_live.json`` applies to.

    Baseline and live cycles are *interleaved* (one of each per
    repeat, best-of over both streams): allocator and page-cache drift
    across a run otherwise dwarfs the tens-of-microseconds telemetry
    delta being measured.  The executor's execute path never touches
    the event/progress globals, so baseline cycles are unaffected by
    the telemetry being active around them.

    Telemetry artifacts go to ``artifact_dir`` (a temporary directory
    by default) so the measurement includes real file writes.
    """
    import tempfile

    if obs_events.is_active() or obs_progress.is_active():
        raise RuntimeError(
            "measure_live_overhead must start with events and progress disabled"
        )
    executor = Executor(database)
    plan = plan if plan is not None else default_overhead_plan(database)

    for _ in range(warmup):
        executor.execute(plan)

    run = _OverheadRun()

    def cycle() -> None:
        obs_events.emit("query.start", query="overhead")
        result = executor.execute(plan)
        obs_progress.record_result(run, index=0)
        obs_events.emit(
            "query.completed",
            query="overhead",
            seconds=result.elapsed_seconds,
        )

    baseline = float("inf")
    live = float("inf")
    with tempfile.TemporaryDirectory() as tmp:
        base = Path(artifact_dir) if artifact_dir is not None else Path(tmp)
        base.mkdir(parents=True, exist_ok=True)
        obs_events.activate(base / "overhead.events.jsonl")
        obs_progress.activate(snapshot_path=base / "overhead.prom")
        obs_progress.begin_campaign(
            total=repeats, estimator="overhead", workload="overhead"
        )
        try:
            for _ in range(repeats):
                baseline = min(baseline, _best_of(lambda: executor.execute(plan), 1))
                live = min(live, _best_of(cycle, 1))
        finally:
            obs_progress.end_campaign()
            obs_progress.deactivate()
            obs_events.deactivate()

    return {
        "repeats": repeats,
        "plan_tables": sorted(plan.tables),
        "baseline_seconds": baseline,
        "live_seconds": live,
        "overhead_live": live / baseline - 1.0,
    }


def measure_sampler_overhead(
    database: Database,
    plan: PlanNode | None = None,
    repeats: int = 30,
    warmup: int = 3,
    interval_seconds: float = 0.01,
) -> dict:
    """Time plan executions with the stack sampler on vs off.

    The sampler never touches the profiled code path — the only cost is
    the GIL time its daemon thread steals at ~100 Hz — so this is the
    contract the continuous-profiling layer commits to: < 2% relative
    to an unsampled run.  Baseline and sampled executions are
    interleaved (one of each per repeat, best-of over both streams) for
    the same drift-suppression reasons as :func:`measure_live_overhead`;
    a fresh sampler thread is started and joined *outside* the timed
    region of each sampled cycle.
    """
    from repro.obs.prof.sampler import StackSampler

    executor = Executor(database)
    plan = plan if plan is not None else campaign_overhead_plan(database)

    for _ in range(warmup):
        executor.execute(plan)

    baseline = float("inf")
    sampled = float("inf")
    total_samples = 0
    for _ in range(repeats):
        baseline = min(baseline, _best_of(lambda: executor.execute(plan), 1))
        sampler = StackSampler(interval_seconds=interval_seconds)
        with sampler:
            sampled = min(sampled, _best_of(lambda: executor.execute(plan), 1))
        total_samples += sampler.sample_count

    return {
        "repeats": repeats,
        "plan_tables": sorted(plan.tables),
        "interval_seconds": interval_seconds,
        "samples": total_samples,
        "baseline_seconds": baseline,
        "sampled_seconds": sampled,
        "overhead_sampler": sampled / baseline - 1.0,
    }


def measure_serve_overhead(
    baseline_address: tuple[str, int],
    instrumented_address: tuple[str, int],
    payloads: list[dict],
    path: str = "/estimate",
    rounds: int = 30,
    requests_per_round: int = 8,
    warmup: int = 5,
    timeout: float = 30.0,
) -> dict:
    """Per-request serving cost with full request observability on vs off.

    Two identical serving stacks answer the same payload cycle over
    persistent HTTP connections; the instrumented one additionally
    writes per-request traces, access-log lines and SLO accounting.
    Rounds are *interleaved* (one baseline round, one instrumented
    round, repeated) and each stack keeps its best round's mean
    request latency, for the same drift-suppression reasons as
    :func:`measure_live_overhead`.  ``overhead_serve`` is the number
    the < 2% budget in ``BENCH_serve_obs.json`` applies to.
    """
    import http.client

    def connect(address: tuple[str, int]) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(address[0], address[1], timeout=timeout)

    def run_round(connection: http.client.HTTPConnection, offset: int) -> float:
        started = time.perf_counter()
        for index in range(requests_per_round):
            payload = payloads[(offset + index) % len(payloads)]
            connection.request(
                "POST",
                path,
                body=json.dumps(payload),
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            response.read()
            if response.status != 200:
                raise RuntimeError(
                    f"serve overhead round got HTTP {response.status}"
                )
        return (time.perf_counter() - started) / requests_per_round

    base_conn = connect(baseline_address)
    inst_conn = connect(instrumented_address)
    try:
        for index in range(warmup):
            run_round(base_conn, index)
            run_round(inst_conn, index)
        baseline = float("inf")
        instrumented = float("inf")
        for round_index in range(rounds):
            offset = round_index * requests_per_round
            baseline = min(baseline, run_round(base_conn, offset))
            instrumented = min(instrumented, run_round(inst_conn, offset))
    finally:
        base_conn.close()
        inst_conn.close()

    return {
        "rounds": rounds,
        "requests_per_round": requests_per_round,
        "payloads": len(payloads),
        "baseline_seconds_per_request": baseline,
        "instrumented_seconds_per_request": instrumented,
        "overhead_serve": instrumented / baseline - 1.0,
    }
