"""Plan-quality blame: attribute P-Error / runtime gaps to sub-plan misestimates.

The paper's central argument (Section 7) is that an estimator must be
judged by the *plans its estimates induce*.  P-Error quantifies the
damage per query; this module explains it.  For one (estimator, query)
pair it:

1. plans the query twice — under the injected estimates and under the
   true cardinalities — and diffs the two plans,
2. optionally executes the estimate-induced plan with per-node
   instrumentation (the EXPLAIN ANALYZE walk) and the true plan for a
   runtime reference, and
3. ranks every sub-plan appearing in either plan by its est-vs-true
   cardinality ratio, producing a per-query attribution whose top
   entry names the worst-misestimated sub-plan — the mechanical form
   of the paper's O1/O5-style observations ("the damage comes from
   underestimating large intermediate joins").

Per-campaign roll-ups aggregate the per-query attributions by sub-plan
(which table subsets an estimator keeps getting wrong) and by join
template (which query shapes suffer), so ``repro blame`` can answer
"where do this estimator's bad plans come from" directly from
benchmark artifacts.
"""

from __future__ import annotations

import json
import math
import statistics
from collections import Counter as TallyCounter
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.injection import estimate_sub_plans
from repro.engine.database import Database
from repro.engine.executor import ExecutionAborted, Executor, NodeRuntimeStats
from repro.engine.planner import Planner
from repro.engine.plans import JoinNode, PlanNode, join_order_signature, plan_methods
from repro.engine.query import LabeledQuery, Query

BLAME_SCHEMA_VERSION = 1


@dataclass
class NodeAttribution:
    """One sub-plan's contribution to a query's plan-quality gap."""

    #: Sorted tables of the sub-plan.
    tables: tuple[str, ...]
    #: Estimator's cardinality for the sub-plan.
    estimated_rows: float
    #: True cardinality of the sub-plan.
    true_rows: float
    #: ``max(est/true, true/est)`` clamped to >= 1 — the Q-Error of
    #: this sub-plan, which is what the ranking sorts by.
    ratio: float
    #: ``under`` / ``over`` / ``exact`` relative to the truth.
    direction: str
    #: Operator chosen for this sub-plan in the estimate-induced plan
    #: (None when the sub-plan only appears in the true plan).
    method: str | None = None
    #: Whether the sub-plan is materialized by each plan.
    in_estimate_plan: bool = False
    in_true_plan: bool = False
    #: EXPLAIN ANALYZE facts for the node in the estimate-induced plan
    #: (None without instrumentation or when absent from that plan).
    actual_rows: int | None = None
    elapsed_seconds: float | None = None

    @property
    def log2_ratio(self) -> float:
        return math.log2(self.ratio) if self.ratio > 0 else 0.0

    def label(self) -> str:
        return " ⋈ ".join(self.tables)


@dataclass
class QueryBlame:
    """Full attribution for one (estimator, query) pair."""

    query_name: str
    estimator: str
    num_tables: int
    p_error: float
    #: True when the estimates changed the chosen plan at all.
    plans_differ: bool
    est_join_order: tuple = ()
    true_join_order: tuple = ()
    est_methods: list[str] = field(default_factory=list)
    true_methods: list[str] = field(default_factory=list)
    #: Wall time of the estimate-induced plan (EXPLAIN ANALYZE run).
    execution_seconds: float | None = None
    #: Wall time of the true-cardinality plan (runtime reference).
    true_execution_seconds: float | None = None
    aborted: bool = False
    #: Ranked worst-first by ``ratio``.
    attributions: list[NodeAttribution] = field(default_factory=list)

    @property
    def top(self) -> NodeAttribution | None:
        return self.attributions[0] if self.attributions else None

    @property
    def runtime_gap_seconds(self) -> float | None:
        """Extra wall time the estimate-induced plan cost (>= 0)."""
        if self.execution_seconds is None or self.true_execution_seconds is None:
            return None
        return max(0.0, self.execution_seconds - self.true_execution_seconds)


@dataclass
class BlameReport:
    """Per-estimator campaign attribution with roll-ups."""

    estimator: str
    workload: str
    queries: list[QueryBlame] = field(default_factory=list)

    def worst_queries(self, count: int = 5) -> list[QueryBlame]:
        """Queries ranked by P-Error (NaN last), worst first."""
        def key(blame: QueryBlame):
            p_error = blame.p_error
            return (-(p_error if math.isfinite(p_error) else -1.0), blame.query_name)

        return sorted(self.queries, key=key)[:count]

    def slowest_query(self) -> QueryBlame | None:
        """The query whose estimate-induced plan ran longest."""
        timed = [b for b in self.queries if b.execution_seconds is not None]
        if not timed:
            return None
        return max(timed, key=lambda b: b.execution_seconds)

    def rollup_by_subplan(self) -> list[dict]:
        """Which sub-plans this estimator keeps getting wrong.

        Aggregates every query's *top* attribution, so the list reads
        as "these table subsets caused the bad plans", ordered by how
        often each subset was the worst offender, then by severity.
        """
        groups: dict[tuple[str, ...], dict] = {}
        for blame in self.queries:
            top = blame.top
            if top is None or top.ratio <= 1.0:
                continue
            entry = groups.setdefault(
                top.tables,
                {
                    "tables": list(top.tables),
                    "times_top_offender": 0,
                    "max_ratio": 0.0,
                    "log2_ratios": [],
                    "runtime_gap_seconds": 0.0,
                    "queries": [],
                },
            )
            entry["times_top_offender"] += 1
            entry["max_ratio"] = max(entry["max_ratio"], top.ratio)
            entry["log2_ratios"].append(top.log2_ratio)
            gap = blame.runtime_gap_seconds
            if gap is not None:
                entry["runtime_gap_seconds"] += gap
            entry["queries"].append(blame.query_name)
        rollup = []
        for entry in groups.values():
            ratios = entry.pop("log2_ratios")
            entry["mean_log2_ratio"] = statistics.fmean(ratios) if ratios else 0.0
            rollup.append(entry)
        rollup.sort(
            key=lambda e: (-e["times_top_offender"], -e["max_ratio"], e["tables"])
        )
        return rollup

    def rollup_by_template(self) -> list[dict]:
        """Per join template (the query's joined table set) aggregates."""
        groups: dict[tuple[str, ...], list[QueryBlame]] = {}
        for blame in self.queries:
            template = tuple(sorted({t for a in blame.attributions for t in a.tables}))
            # The full query's table set is the attribution with every
            # table; fall back to it via the widest attribution.
            widest = max(
                (a.tables for a in blame.attributions), key=len, default=()
            )
            groups.setdefault(tuple(widest) or template, []).append(blame)
        rollup = []
        for template, blames in groups.items():
            p_errors = [
                b.p_error for b in blames if math.isfinite(b.p_error)
            ]
            top_tables = TallyCounter(
                b.top.tables for b in blames if b.top is not None
            )
            gaps = [g for b in blames if (g := b.runtime_gap_seconds) is not None]
            rollup.append(
                {
                    "template": list(template),
                    "num_tables": len(template),
                    "queries": len(blames),
                    "plans_differ": sum(1 for b in blames if b.plans_differ),
                    "median_p_error": (
                        statistics.median(p_errors) if p_errors else None
                    ),
                    "max_p_error": max(p_errors) if p_errors else None,
                    "runtime_gap_seconds": sum(gaps) if gaps else 0.0,
                    "worst_subplan": (
                        list(top_tables.most_common(1)[0][0]) if top_tables else None
                    ),
                }
            )
        rollup.sort(key=lambda e: (-(e["max_p_error"] or 0.0), e["template"]))
        return rollup


# -- per-query attribution ----------------------------------------------------


def plan_subsets(plan: PlanNode) -> dict[frozenset[str], PlanNode]:
    """Every node of ``plan`` keyed by its covered table set."""
    nodes: dict[frozenset[str], PlanNode] = {}

    def walk(node: PlanNode) -> None:
        nodes[node.tables] = node
        if isinstance(node, JoinNode):
            walk(node.left)
            walk(node.right)

    walk(plan)
    return nodes


def _ratio(estimated: float, true: float) -> tuple[float, str]:
    estimated = max(float(estimated), 1.0)
    true = max(float(true), 1.0)
    if estimated == true:
        return 1.0, "exact"
    if estimated < true:
        return true / estimated, "under"
    return estimated / true, "over"


def blame_query(
    database: Database,
    query: Query,
    estimates: dict[frozenset[str], float],
    true_cards: dict[frozenset[str], float],
    *,
    estimator_name: str = "",
    planner: Planner | None = None,
    executor: Executor | None = None,
    analyze: bool = True,
    node_stats: dict[frozenset[str], NodeRuntimeStats] | None = None,
) -> QueryBlame:
    """Attribute one query's plan-quality gap to its sub-plan estimates.

    ``node_stats`` short-circuits the EXPLAIN ANALYZE execution with
    previously collected per-node stats (e.g. deserialized from an
    :class:`~repro.engine.explain.ExplainResult` artifact) — the
    attribution is identical either way, which the round-trip tests
    assert.
    """
    planner = planner or Planner(database)
    est_planned = planner.plan(query, estimates)
    true_planned = planner.plan(query, true_cards)
    cost_model = planner.cost_model
    cost_est = cost_model.plan_cost(est_planned.plan, true_cards)
    cost_true = cost_model.plan_cost(true_planned.plan, true_cards)
    p_error = max(cost_est / max(cost_true, 1e-12), 1.0)

    est_order = join_order_signature(est_planned.plan)
    true_order = join_order_signature(true_planned.plan)
    est_methods = plan_methods(est_planned.plan)
    true_methods = plan_methods(true_planned.plan)
    plans_differ = est_order != true_order or est_methods != true_methods

    execution_seconds = None
    true_execution_seconds = None
    aborted = False
    if node_stats is None and analyze:
        executor = executor or Executor(database)
        node_stats = {}
        try:
            result = executor.execute(est_planned.plan, collect_stats=True)
            node_stats = result.node_stats
            execution_seconds = result.elapsed_seconds
        except ExecutionAborted:
            aborted = True
        try:
            true_execution_seconds = executor.execute(
                true_planned.plan
            ).elapsed_seconds
        except ExecutionAborted:
            true_execution_seconds = None
    elif node_stats is not None:
        execution_seconds = sum(
            stats.elapsed_seconds
            for subset, stats in node_stats.items()
            if subset == query.tables
        ) or None
    node_stats = node_stats or {}

    est_nodes = plan_subsets(est_planned.plan)
    true_nodes = plan_subsets(true_planned.plan)
    attributions: list[NodeAttribution] = []
    for subset in est_nodes.keys() | true_nodes.keys():
        estimated = estimates.get(subset, float("nan"))
        true = true_cards.get(subset, float("nan"))
        if not (math.isfinite(estimated) and math.isfinite(true)):
            continue
        ratio, direction = _ratio(estimated, true)
        stats = node_stats.get(subset)
        est_node = est_nodes.get(subset)
        attributions.append(
            NodeAttribution(
                tables=tuple(sorted(subset)),
                estimated_rows=float(estimated),
                true_rows=float(true),
                ratio=ratio,
                direction=direction,
                method=est_node.method if est_node is not None else None,
                in_estimate_plan=subset in est_nodes,
                in_true_plan=subset in true_nodes,
                actual_rows=stats.rows_out if stats is not None else None,
                elapsed_seconds=stats.elapsed_seconds if stats is not None else None,
            )
        )
    # Worst misestimate first; break ties toward larger (more damaging)
    # sub-plans, then deterministically by table list.
    attributions.sort(key=lambda a: (-a.ratio, -a.true_rows, a.tables))

    return QueryBlame(
        query_name=query.name,
        estimator=estimator_name,
        num_tables=query.num_tables,
        p_error=p_error,
        plans_differ=plans_differ,
        est_join_order=est_order,
        true_join_order=true_order,
        est_methods=est_methods,
        true_methods=true_methods,
        execution_seconds=execution_seconds,
        true_execution_seconds=true_execution_seconds,
        aborted=aborted,
        attributions=attributions,
    )


def blame_labeled(
    database: Database,
    labeled: LabeledQuery,
    estimator,
    *,
    planner: Planner | None = None,
    executor: Executor | None = None,
    analyze: bool = True,
) -> QueryBlame:
    """Blame one workload entry: estimates are collected on the spot."""
    estimates = estimate_sub_plans(estimator, labeled.query)
    true_cards = {
        subset: float(count) for subset, count in labeled.sub_plan_true_cards.items()
    }
    return blame_query(
        database,
        labeled.query,
        estimates,
        true_cards,
        estimator_name=getattr(estimator, "name", type(estimator).__name__),
        planner=planner,
        executor=executor,
        analyze=analyze,
    )


def blame_workload(
    database: Database,
    workload,
    estimator,
    *,
    analyze: bool = True,
    limit: int | None = None,
    executor: Executor | None = None,
) -> BlameReport:
    """Blame every query of a labelled workload under one estimator."""
    planner = Planner(database)
    executor = executor or Executor(database)
    report = BlameReport(
        estimator=getattr(estimator, "name", type(estimator).__name__),
        workload=getattr(workload, "name", ""),
    )
    queries = list(workload.queries)
    if limit is not None:
        queries = queries[: max(0, limit)]
    for labeled in queries:
        report.queries.append(
            blame_labeled(
                database,
                labeled,
                estimator,
                planner=planner,
                executor=executor,
                analyze=analyze,
            )
        )
    return report


# -- (de)serialization --------------------------------------------------------


def _attribution_to_dict(attribution: NodeAttribution) -> dict:
    return {
        "tables": list(attribution.tables),
        "estimated_rows": attribution.estimated_rows,
        "true_rows": attribution.true_rows,
        "ratio": attribution.ratio,
        "direction": attribution.direction,
        "method": attribution.method,
        "in_estimate_plan": attribution.in_estimate_plan,
        "in_true_plan": attribution.in_true_plan,
        "actual_rows": attribution.actual_rows,
        "elapsed_seconds": attribution.elapsed_seconds,
    }


def _query_blame_to_dict(blame: QueryBlame) -> dict:
    return {
        "query": blame.query_name,
        "estimator": blame.estimator,
        "num_tables": blame.num_tables,
        "p_error": blame.p_error if math.isfinite(blame.p_error) else None,
        "plans_differ": blame.plans_differ,
        "est_join_order": _listify(blame.est_join_order),
        "true_join_order": _listify(blame.true_join_order),
        "est_methods": list(blame.est_methods),
        "true_methods": list(blame.true_methods),
        "execution_seconds": blame.execution_seconds,
        "true_execution_seconds": blame.true_execution_seconds,
        "runtime_gap_seconds": blame.runtime_gap_seconds,
        "aborted": blame.aborted,
        "attributions": [_attribution_to_dict(a) for a in blame.attributions],
    }


def report_to_dict(report: BlameReport) -> dict:
    return {
        "schema_version": BLAME_SCHEMA_VERSION,
        "estimator": report.estimator,
        "workload": report.workload,
        "queries": [_query_blame_to_dict(b) for b in report.queries],
        "rollup_by_subplan": report.rollup_by_subplan(),
        "rollup_by_template": report.rollup_by_template(),
    }


def write_blame_json(path: str | Path, report: BlameReport) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report_to_dict(report), indent=2, sort_keys=True) + "\n")
    return path


def load_blame_json(path: str | Path) -> dict:
    """Read a blame report, rejecting incompatible schema versions."""
    payload = json.loads(Path(path).read_text())
    version = payload.get("schema_version")
    if version != BLAME_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: blame schema {version!r} is not supported "
            f"(expected {BLAME_SCHEMA_VERSION})"
        )
    return payload


def _listify(value):
    if isinstance(value, tuple):
        return [_listify(item) for item in value]
    return value


# -- text rendering -----------------------------------------------------------


def render_blame_report(report: BlameReport, top: int = 5) -> str:
    """Human-readable campaign attribution (the ``repro blame`` output)."""
    lines = [f"Blame report: {report.estimator} on {report.workload}"]
    finite = [b.p_error for b in report.queries if math.isfinite(b.p_error)]
    if finite:
        lines.append(
            f"  queries: {len(report.queries)}, median P-Error "
            f"{statistics.median(finite):.3f}, max {max(finite):.3f}"
        )
    differ = sum(1 for b in report.queries if b.plans_differ)
    lines.append(f"  plans changed by estimates: {differ}/{len(report.queries)}")

    lines.append("")
    lines.append(f"  Worst queries (by P-Error, top {top}):")
    for blame in report.worst_queries(top):
        offender = blame.top
        detail = ""
        if offender is not None:
            detail = (
                f"  <- {offender.label()} "
                f"({offender.direction}-estimated {offender.ratio:.1f}x: "
                f"est {offender.estimated_rows:.0f} vs true {offender.true_rows:.0f})"
            )
        gap = blame.runtime_gap_seconds
        gap_text = f", +{gap * 1000:.1f}ms vs true plan" if gap else ""
        lines.append(
            f"    {blame.query_name}: P-Error {blame.p_error:.3f}"
            f"{gap_text}{detail}"
        )

    subplans = report.rollup_by_subplan()
    if subplans:
        lines.append("")
        lines.append("  Repeat-offender sub-plans:")
        for entry in subplans[:top]:
            lines.append(
                f"    {' ⋈ '.join(entry['tables'])}: top offender in "
                f"{entry['times_top_offender']} queries, worst ratio "
                f"{entry['max_ratio']:.1f}x, mean 2^{entry['mean_log2_ratio']:.1f}"
            )

    templates = report.rollup_by_template()
    if templates:
        lines.append("")
        lines.append("  Join templates:")
        for entry in templates[:top]:
            median = entry["median_p_error"]
            median_text = f"{median:.3f}" if median is not None else "n/a"
            lines.append(
                f"    {' ⋈ '.join(entry['template'])}: {entry['queries']} queries, "
                f"median P-Error {median_text}, plans changed "
                f"{entry['plans_differ']}/{entry['queries']}"
            )
    return "\n".join(lines)
