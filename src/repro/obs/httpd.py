"""Shared routed HTTP machinery for the live endpoints.

Both live HTTP surfaces — the campaign telemetry endpoint
(:class:`repro.obs.progress.MetricsServer`) and the estimation service
(:mod:`repro.serve`) — are stdlib ``ThreadingHTTPServer`` instances
with the same operational needs, factored out here:

- a **route table** keyed by ``(method, path)``, matched on the *path
  component only* (``urllib.parse.urlsplit``), so ``/healthz?probe=1``
  hits the ``/healthz`` route instead of falling through to 404;
- a **bind/start split**: the constructor binds the socket (so an
  address conflict raises :class:`ServerStartError` before any thread
  exists) and :meth:`RoutedHTTPServer.start` starts serving;
- an **idempotent** :meth:`RoutedHTTPServer.close` that reports
  whether the serving thread actually joined;
- **benign client aborts** (a scraper or load generator disconnecting
  mid-response) swallowed instead of splattered across stderr as
  ``BrokenPipeError`` tracebacks.

Handlers speak HTTP/1.1 with explicit ``Content-Length``, so clients
can keep connections alive — the estimation service's load generator
depends on that to measure serving, not TCP setup.
"""

from __future__ import annotations

import json
import re
import sys
import threading
import uuid
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

REQUEST_ID_HEADER = "X-Request-ID"

#: Characters allowed in a client-supplied request id (anything else is
#: stripped before the id is echoed into headers, logs and traces).
_REQUEST_ID_SAFE = re.compile(r"[^A-Za-z0-9._\-]")


def sanitize_request_id(supplied: str | None) -> str:
    """A client-supplied ``X-Request-ID`` value, made safe to echo.

    Strips anything outside ``[A-Za-z0-9._-]`` and caps the length; an
    empty or all-junk value mints a fresh id instead, so every response
    carries a usable correlation id either way.
    """
    cleaned = _REQUEST_ID_SAFE.sub("", supplied or "")[:64]
    return cleaned or uuid.uuid4().hex[:16]

#: Exceptions raised when the *client* goes away mid-request; routine
#: under load, never worth a traceback.
CLIENT_ABORT_ERRORS = (
    BrokenPipeError,
    ConnectionResetError,
    ConnectionAbortedError,
    TimeoutError,
)


class ServerStartError(RuntimeError):
    """The server socket could not be bound (address in use, bad host)."""


class HTTPError(Exception):
    """A route failure with an explicit HTTP status.

    Routes raise this (or a :class:`ServerStartError`-style subclass
    mapped by the app layer) to produce a structured JSON error body
    instead of a 500.
    """

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


def parse_address(addr: str, flag: str = "--metrics-addr") -> tuple[str, int]:
    """``HOST:PORT`` / ``:PORT`` -> ``(host, port)``; ValueError on junk."""
    host, _, port_text = addr.rpartition(":")
    host = host or "127.0.0.1"
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"{flag} expects HOST:PORT or :PORT, got {addr!r}"
        ) from None
    return host, port


@dataclass
class Request:
    """One parsed HTTP request as seen by a route callable."""

    method: str
    path: str
    params: dict[str, list[str]] = field(default_factory=dict)
    body: bytes = b""
    headers: dict[str, str] = field(default_factory=dict)
    #: Adopted from the client's ``X-Request-ID`` header (sanitized) or
    #: minted by the server; echoed on every response, success or error.
    request_id: str = ""

    def json(self) -> dict:
        """The request body as a JSON object; HTTP 400 on anything else."""
        if not self.body:
            raise HTTPError(400, "request body must be a JSON object")
        try:
            payload = json.loads(self.body)
        except json.JSONDecodeError as error:
            raise HTTPError(400, f"invalid JSON body: {error}") from None
        if not isinstance(payload, dict):
            raise HTTPError(400, "request body must be a JSON object")
        return payload


@dataclass
class Response:
    """What a route returns; ``body`` may be bytes, text or a JSON dict."""

    status: int = 200
    body: bytes | str | dict = b""
    content_type: str = "application/json"
    headers: dict[str, str] = field(default_factory=dict)

    def encoded(self) -> bytes:
        if isinstance(self.body, bytes):
            return self.body
        if isinstance(self.body, str):
            return self.body.encode()
        return (json.dumps(self.body, sort_keys=True) + "\n").encode()


def json_response(payload: dict, status: int = 200) -> Response:
    return Response(status=status, body=payload)


def text_response(text: str, content_type: str = "text/plain") -> Response:
    return Response(body=text, content_type=content_type)


def _normalize(path: str) -> str:
    return path.rstrip("/") or "/"


class _Handler(BaseHTTPRequestHandler):
    """Route-table dispatcher; one instance per connection."""

    protocol_version = "HTTP/1.1"
    # Headers and body go out as separate writes; without TCP_NODELAY,
    # Nagle holds the body back waiting on the client's delayed ACK
    # (~40ms per request on Linux).
    disable_nagle_algorithm = True
    server: "_Server"

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        parts = urlsplit(self.path)
        path = _normalize(parts.path)
        routes = self.server.router.routes
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length > 0 else b""
        # The request id exists before routing, so even 404/405/500
        # responses carry it and clients can correlate failures with
        # server-side traces and access-log lines.
        request_id = sanitize_request_id(self.headers.get(REQUEST_ID_HEADER))
        route = routes.get((method, path))
        if route is None:
            known = sorted({m for m, p in routes if p == path})
            if known:
                response = json_response(
                    {
                        "error": f"{path} only supports {', '.join(known)}",
                        "request_id": request_id,
                    },
                    status=405,
                )
            else:
                response = json_response(
                    {"error": f"no route {path}", "request_id": request_id}, 404
                )
            self._respond(response, request_id)
            return
        request = Request(
            method=method,
            path=path,
            params=parse_qs(parts.query),
            body=body,
            headers={key: value for key, value in self.headers.items()},
            request_id=request_id,
        )
        try:
            response = route(request)
        except HTTPError as error:
            response = json_response(
                {"error": str(error), "request_id": request_id},
                status=error.status,
            )
        except Exception as error:  # route bug: structured 500, keep serving
            response = json_response(
                {
                    "error": f"{type(error).__name__}: {error}",
                    "request_id": request_id,
                },
                status=500,
            )
        self._respond(response, request_id)

    def _respond(self, response: Response, request_id: str = "") -> None:
        try:
            body = response.encoded()
            self.send_response(response.status)
            self.send_header("Content-Type", response.content_type)
            self.send_header("Content-Length", str(len(body)))
            if request_id and REQUEST_ID_HEADER not in response.headers:
                self.send_header(REQUEST_ID_HEADER, request_id)
            for name, value in response.headers.items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)
        except CLIENT_ABORT_ERRORS:
            self.close_connection = True  # client is gone; drop quietly

    def log_message(self, *args) -> None:
        pass  # endpoints are polled; keep stderr clean


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    # The socketserver default backlog (5) drops connections when many
    # clients connect in a burst; serving tolerates 64+ concurrent.
    request_queue_size = 128
    router: "RoutedHTTPServer"

    def handle_error(self, request, client_address) -> None:
        """Swallow client-abort errors; report anything else as stdlib does."""
        if isinstance(sys.exc_info()[1], CLIENT_ABORT_ERRORS):
            return
        super().handle_error(request, client_address)


class RoutedHTTPServer:
    """A bind/start-split threaded HTTP server over a route table.

    The constructor *binds* (raising :class:`ServerStartError` on an
    address conflict, before any thread starts); :meth:`start` begins
    serving on a daemon thread; :meth:`close` is idempotent and
    returns whether that thread actually joined.
    """

    def __init__(
        self,
        addr: str,
        flag: str = "--metrics-addr",
        thread_name: str = "repro-httpd",
    ):
        host, port = parse_address(addr, flag=flag)
        self.routes: dict[tuple[str, str], object] = {}
        self._thread_name = thread_name
        self._thread: threading.Thread | None = None
        self._closed = False
        try:
            self._server = _Server((host, port), _Handler)
        except OSError as error:
            raise ServerStartError(
                f"cannot bind {flag}={addr!r}: {error.strerror or error}"
            ) from error
        self._server.router = self

    def add_route(self, method: str, path: str, fn) -> None:
        self.routes[(method.upper(), _normalize(path))] = fn

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — callers may bind port 0."""
        return self._server.server_address[:2]

    @property
    def started(self) -> bool:
        return self._thread is not None

    def start(self) -> "RoutedHTTPServer":
        if self._closed:
            raise RuntimeError("server already closed")
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name=self._thread_name,
                daemon=True,
            )
            self._thread.start()
        return self

    def close(self, timeout: float = 5.0) -> bool:
        """Stop serving; safe to call twice.  True iff no serving thread
        remains alive (a never-started server closes trivially)."""
        if not self._closed:
            self._closed = True
            if self._thread is not None:
                self._server.shutdown()
            self._server.server_close()
        if self._thread is None:
            return True
        self._thread.join(timeout=timeout)
        return not self._thread.is_alive()
