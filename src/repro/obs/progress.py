"""Live campaign progress: aggregation, Prometheus export, HTTP endpoint.

Long benchmark campaigns used to run dark: the only signals were the
final report and (since the resilience PR) the checkpoint file.  This
module is the live view.  A :class:`ProgressTracker` aggregates the
per-query completion stream — from the serial driver directly, or from
the Pipe messages forked workers already send — into done / failed /
aborted counts, throughput and an ETA, and periodically materializes
two read-side artifacts:

- a **Prometheus text-format snapshot file** (:class:`SnapshotWriter`,
  atomic ``os.replace`` so scrapers never see a torn file), and
- an optional **stdlib HTTP endpoint** (:class:`MetricsServer`) serving
  ``/metrics`` (Prometheus exposition text, campaign gauges plus the
  whole :mod:`repro.obs.metrics` registry), ``/progress`` (JSON) and
  ``/healthz`` (200 + run id liveness probe).

Like the tracer and the event log, the module-level hooks
(:func:`record_claim` / :func:`record_result` / …) are no-ops until
:func:`activate` installs a tracker, so instrumented call sites cost a
single global read on untelemetered runs.
"""

from __future__ import annotations

import math
import os
import re
import threading
import time
from collections import deque
from pathlib import Path

from repro.obs import metrics as obs_metrics
from repro.obs.httpd import (
    PROMETHEUS_CONTENT_TYPE,
    Request,
    Response,
    RoutedHTTPServer,
    json_response,
    text_response,
)

#: Completions kept for the recent-throughput window.
_RECENT_WINDOW = 32


class ProgressTracker:
    """Aggregated live state of one benchmark campaign."""

    def __init__(
        self,
        total: int = 0,
        estimator: str = "",
        workload: str = "",
        clock=time.monotonic,
    ):
        self._clock = clock
        self._lock = threading.Lock()
        self.begin(total, estimator=estimator, workload=workload)

    def begin(self, total: int, estimator: str = "", workload: str = "") -> None:
        """Reset for a new campaign of ``total`` queries."""
        with self._lock:
            self.total = int(total)
            self.estimator = estimator
            self.workload = workload
            self.done = 0
            self.failed = 0
            self.aborted = 0
            self.started = self._clock()
            self._recent: deque[float] = deque(maxlen=_RECENT_WINDOW)
            self._in_flight: set[int] = set()
            self._workers: dict[int, float] = {}

    # -- update hooks ------------------------------------------------------

    def record_claim(self, index: int, worker: int | None = None) -> None:
        """A query was claimed (is now in flight)."""
        with self._lock:
            self._in_flight.add(index)
            if worker is not None:
                self._workers[worker] = self._clock()

    def heartbeat(self, worker: int) -> None:
        """A worker proved liveness (any message counts)."""
        with self._lock:
            self._workers[worker] = self._clock()

    def record_result(self, run, index: int | None = None) -> None:
        """One query finished; classify from the run's outcome flags."""
        with self._lock:
            self.done += 1
            if getattr(run, "failed", False):
                self.failed += 1
            elif getattr(run, "aborted", False):
                self.aborted += 1
            self._recent.append(self._clock())
            if index is not None:
                self._in_flight.discard(index)

    # -- derived views -----------------------------------------------------

    @property
    def remaining(self) -> int:
        return max(0, self.total - self.done)

    def elapsed_seconds(self) -> float:
        return max(0.0, self._clock() - self.started)

    def throughput_qps(self) -> float:
        """Recent completions per second (falls back to overall rate).

        Contract for live exporters: always a finite, non-negative
        float — never an exception — even under clock skew, a
        mid-campaign :meth:`begin`, or a concurrent mutation of the
        recent-completion window.
        """
        try:
            recent = tuple(self._recent)
            rate = 0.0
            if len(recent) >= 2:
                span = recent[-1] - recent[0]
                if span > 0:
                    rate = (len(recent) - 1) / span
            if rate <= 0:
                elapsed = self.elapsed_seconds()
                if self.done > 0 and elapsed > 0:
                    rate = self.done / elapsed
            if not math.isfinite(rate) or rate < 0:
                return 0.0
            return rate
        except (ArithmeticError, IndexError):
            return 0.0

    def eta_seconds(self) -> float | None:
        """Projected seconds to completion, or None before any signal.

        Same hardening contract as :meth:`throughput_qps`: a finite
        non-negative float or ``None``, never an exception or a
        negative projection.
        """
        rate = self.throughput_qps()
        if rate <= 0:
            return None
        try:
            eta = self.remaining / rate
        except ArithmeticError:
            return None
        if not math.isfinite(eta) or eta < 0:
            return None
        return eta

    def stale_workers(self, max_silence_seconds: float) -> list[int]:
        """Workers silent for longer than ``max_silence_seconds``."""
        now = self._clock()
        return sorted(
            worker
            for worker, seen in self._workers.items()
            if now - seen > max_silence_seconds
        )

    def snapshot(self) -> dict:
        """JSON-serializable live view (the ``/progress`` payload)."""
        with self._lock:
            now = self._clock()
            eta = self.eta_seconds()
            return {
                "estimator": self.estimator,
                "workload": self.workload,
                "total": self.total,
                "done": self.done,
                "failed": self.failed,
                "aborted": self.aborted,
                "remaining": self.remaining,
                "in_flight": sorted(self._in_flight),
                "elapsed_seconds": self.elapsed_seconds(),
                "throughput_qps": self.throughput_qps(),
                "eta_seconds": eta,
                "workers": {
                    str(worker): round(now - seen, 3)
                    for worker, seen in sorted(self._workers.items())
                },
            }

    def render(self) -> str:
        """One-line human progress view."""
        view = self.snapshot()
        parts = [f"{view['done']}/{view['total']} done"]
        if view["failed"] or view["aborted"]:
            parts.append(f"{view['failed']} failed, {view['aborted']} aborted")
        parts.append(f"{view['throughput_qps']:.2f} q/s")
        eta = view["eta_seconds"]
        if eta is not None:
            parts.append(f"ETA {eta:.0f}s")
        label = f"{view['estimator']}/{view['workload']}".strip("/")
        prefix = f"[{label}] " if label else ""
        return prefix + " | ".join(parts)


# -- Prometheus text exposition ----------------------------------------------

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str) -> str:
    """Registry name -> valid Prometheus metric name."""
    sanitized = _NAME_RE.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return f"repro_{sanitized}"


def _prom_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def prometheus_text(
    registry: obs_metrics.MetricsRegistry | None = None,
    tracker: ProgressTracker | None = None,
) -> str:
    """Render campaign progress + the metrics registry as Prometheus text.

    Counters map to ``counter``, gauges to ``gauge``; histograms are
    exported summary-style (``_count`` / ``_sum`` plus quantile lines).
    Output is sorted by metric name, so snapshots diff cleanly.
    """
    registry = registry if registry is not None else obs_metrics.registry()
    snapshot = registry.snapshot()
    lines: list[str] = []

    if tracker is not None:
        view = tracker.snapshot()
        campaign = [
            ("campaign_queries_total", view["total"]),
            ("campaign_queries_done", view["done"]),
            ("campaign_queries_failed", view["failed"]),
            ("campaign_queries_aborted", view["aborted"]),
            ("campaign_queries_in_flight", len(view["in_flight"])),
            ("campaign_elapsed_seconds", view["elapsed_seconds"]),
            ("campaign_throughput_qps", view["throughput_qps"]),
            ("campaign_workers_alive", len(view["workers"])),
        ]
        if view["eta_seconds"] is not None:
            campaign.append(("campaign_eta_seconds", view["eta_seconds"]))
        for name, value in campaign:
            full = f"repro_{name}"
            lines.append(f"# TYPE {full} gauge")
            lines.append(f"{full} {_prom_value(value)}")

    for name in sorted(snapshot["counters"]):
        full = _prom_name(name)
        lines.append(f"# TYPE {full} counter")
        lines.append(f"{full} {_prom_value(snapshot['counters'][name])}")
    for name in sorted(snapshot["gauges"]):
        full = _prom_name(name)
        lines.append(f"# TYPE {full} gauge")
        lines.append(f"{full} {_prom_value(snapshot['gauges'][name])}")
    histograms = registry.histograms()
    for name in sorted(snapshot["histograms"]):
        summary = snapshot["histograms"][name]
        full = _prom_name(name)
        lines.append(f"# TYPE {full} summary")
        for quantile, key in (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99")):
            if key in summary:
                value = _prom_value(summary[key])
                lines.append(f'{full}{{quantile="{quantile}"}} {value}')
        lines.append(f"{full}_count {_prom_value(summary.get('count', 0))}")
        lines.append(f"{full}_sum {_prom_value(summary.get('sum', 0.0))}")
        # SLO-grade log-bucketed series alongside the percentile
        # snapshot: cumulative counts per upper bound, `le`-labelled
        # like a native Prometheus histogram, so alerting rules can
        # compute exact-window quantiles no reservoir can freeze.
        histogram = histograms.get(name)
        if histogram is not None:
            for bound, cumulative in histogram.cumulative_buckets():
                le = "+Inf" if bound == float("inf") else _prom_value(bound)
                lines.append(f'{full}_bucket{{le="{le}"}} {cumulative}')
    return "\n".join(lines) + "\n"


class SnapshotWriter:
    """Throttled, atomic writer of Prometheus snapshot files.

    ``maybe_write`` is called from the completion hot loop, so it
    rate-limits itself to one write per ``interval_seconds`` unless
    forced; writes go through a temp file + ``os.replace`` so a scraper
    (or a kill signal) can never observe a half-written snapshot.
    """

    def __init__(
        self,
        path: str | Path,
        interval_seconds: float = 1.0,
        clock=time.monotonic,
    ):
        self.path = Path(path)
        self.interval_seconds = interval_seconds
        self._clock = clock
        self._last_write: float | None = None
        self.writes = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)

    def maybe_write(self, tracker: ProgressTracker | None, force: bool = False) -> bool:
        now = self._clock()
        if (
            not force
            and self._last_write is not None
            and now - self._last_write < self.interval_seconds
        ):
            return False
        text = prometheus_text(tracker=tracker)
        temp = self.path.with_name(self.path.name + ".tmp")
        temp.write_text(text)
        os.replace(temp, self.path)
        self._last_write = now
        self.writes += 1
        return True


# -- HTTP endpoint ------------------------------------------------------------


class MetricsServer:
    """Stdlib HTTP server exposing ``/metrics``, ``/progress``, ``/healthz``.

    Built on the shared :class:`repro.obs.httpd.RoutedHTTPServer`: the
    constructor binds the address (an occupied port raises
    :class:`repro.obs.httpd.ServerStartError` before any thread
    starts), :meth:`start` begins serving on a daemon thread, and
    paths are matched on the path component only, so query strings
    (``/healthz?probe=1``) route normally.  ``address`` reports the
    bound (host, port) so callers (and tests) can pass port 0.  Never
    required for a campaign — the snapshot file covers
    scrape-from-disk setups.  ``/healthz`` answers 200 with the
    campaign's ``run_id`` whenever the server thread is alive, so
    external watchdogs can distinguish "the campaign is slow" from
    "the process is gone".
    """

    def __init__(self, addr: str = "127.0.0.1:9464", run_id: str = ""):
        self.run_id = run_id
        self._http = RoutedHTTPServer(
            addr, flag="--metrics-addr", thread_name="repro-metrics"
        )
        self._http.add_route("GET", "/", self._metrics)
        self._http.add_route("GET", "/metrics", self._metrics)
        self._http.add_route("GET", "/progress", self._progress)
        self._http.add_route("GET", "/healthz", self._healthz)

    def _metrics(self, request: Request) -> Response:
        return text_response(
            prometheus_text(tracker=active_tracker()),
            content_type=PROMETHEUS_CONTENT_TYPE,
        )

    def _progress(self, request: Request) -> Response:
        tracker = active_tracker()
        return json_response(tracker.snapshot() if tracker is not None else {})

    def _healthz(self, request: Request) -> Response:
        return json_response({"status": "ok", "run_id": self.run_id})

    def start(self) -> "MetricsServer":
        """Begin serving (separate from the bind in the constructor)."""
        self._http.start()
        return self

    @property
    def address(self) -> tuple[str, int]:
        return self._http.address

    def close(self, timeout: float = 5.0) -> bool:
        """Stop serving; idempotent.  True iff the thread joined."""
        return self._http.close(timeout=timeout)


# -- module-level live view ---------------------------------------------------

_TRACKER: ProgressTracker | None = None
_WRITER: SnapshotWriter | None = None


def active_tracker() -> ProgressTracker | None:
    return _TRACKER


def is_active() -> bool:
    return _TRACKER is not None


def activate(
    tracker: ProgressTracker | None = None,
    snapshot_path: str | Path | None = None,
    snapshot_interval_seconds: float = 1.0,
) -> ProgressTracker:
    """Install a tracker (and optionally a snapshot file) process-wide."""
    global _TRACKER, _WRITER
    _TRACKER = tracker or ProgressTracker()
    _WRITER = (
        SnapshotWriter(snapshot_path, interval_seconds=snapshot_interval_seconds)
        if snapshot_path is not None
        else None
    )
    return _TRACKER


def deactivate() -> None:
    global _TRACKER, _WRITER
    _TRACKER = None
    _WRITER = None


def begin_campaign(total: int, estimator: str = "", workload: str = "") -> None:
    """Reset the live view for a new campaign; no-op when inactive."""
    tracker = _TRACKER
    if tracker is None:
        return
    tracker.begin(total, estimator=estimator, workload=workload)
    if _WRITER is not None:
        _WRITER.maybe_write(tracker, force=True)


def record_claim(index: int, worker: int | None = None) -> None:
    tracker = _TRACKER
    if tracker is None:
        return
    tracker.record_claim(index, worker=worker)
    if _WRITER is not None:
        _WRITER.maybe_write(tracker)


def heartbeat(worker: int) -> None:
    tracker = _TRACKER
    if tracker is not None:
        tracker.heartbeat(worker)


def record_result(run, index: int | None = None) -> None:
    tracker = _TRACKER
    if tracker is None:
        return
    tracker.record_result(run, index=index)
    if _WRITER is not None:
        _WRITER.maybe_write(tracker)


def end_campaign() -> None:
    """Force a final snapshot so the file reflects the terminal state."""
    if _WRITER is not None and _TRACKER is not None:
        _WRITER.maybe_write(_TRACKER, force=True)
