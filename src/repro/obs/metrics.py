"""Process-wide counters, gauges and histograms.

A single :class:`MetricsRegistry` (reachable through :func:`registry`)
accumulates runtime signals the benchmark cares about:

- ``executor.rows.<operator>`` — rows produced per physical operator,
- ``planner.sub_plans_enumerated`` / ``planner.bipartitions_pruned`` —
  DP search effort,
- ``inference.latency_seconds.<estimator>`` — per-sub-plan estimator
  latency histograms (amortised over the batch on the batched path),
- ``inference.batch_size.<estimator>`` /
  ``injection.sub_plans_estimated`` — batched-inference shape and the
  total sub-plans priced,
- ``benchmark.aborted_queries`` — row-budget / timeout aborts,
- ``benchmark.failed_queries`` / ``benchmark.worker_crashes`` —
  infrastructure failures isolated by the resilience layer (estimator
  exceptions, planner/executor errors, dead fork workers),
- ``resilience.fallback_estimates`` and
  ``resilience.{inference,planning,execution}_retries`` — graceful
  degradation and retry-policy activity.

Metrics are plain Python objects with no locking: the engine is
single-process and instrumented call sites record aggregates (one
registry touch per plan/query, not per row), so the registry stays off
the hot path.  :meth:`MetricsRegistry.snapshot` returns a
JSON-serializable view used by ``run_manifest.json``.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field

#: Histograms keep at most this many raw observations for percentile
#: estimates; count/sum/min/max stay exact beyond it.
_HISTOGRAM_SAMPLE_CAP = 8192

#: Log-spaced (factor-2) bucket upper bounds shared by every histogram:
#: ~1µs through ~16k, covering both latency-seconds and batch-size
#: observations.  Unlike the raw-sample reservoir, bucket counts admit
#: EVERY observation, so late-run distribution shifts stay visible in
#: percentiles long after the reservoir has filled.
HISTOGRAM_BUCKET_BOUNDS: tuple[float, ...] = tuple(
    2.0**exponent for exponent in range(-20, 15)
)


@dataclass
class Counter:
    """Monotonically increasing count."""

    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


@dataclass
class Gauge:
    """Last-write-wins instantaneous value."""

    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


@dataclass
class Histogram:
    """Distribution summary: bounded raw-sample reservoir + log buckets.

    The reservoir gives exact percentiles for short runs but stops
    admitting new samples at the cap, so a long-lived process (the
    serving path) would freeze its percentiles on the first
    ``_HISTOGRAM_SAMPLE_CAP`` observations.  The factor-2 log buckets
    count every observation forever; once the reservoir is saturated,
    :meth:`percentile` switches to the bucket counts, so late-run
    latency shifts move p95/p99 (within one bucket boundary).
    """

    count: int = 0
    total: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")
    samples: list[float] = field(default_factory=list)
    #: One count per bound in :data:`HISTOGRAM_BUCKET_BOUNDS` plus a
    #: final overflow bucket; ``bucket_counts[i]`` counts observations
    #: with ``value <= bounds[i]`` (non-cumulative storage).
    bucket_counts: list[int] = field(
        default_factory=lambda: [0] * (len(HISTOGRAM_BUCKET_BOUNDS) + 1)
    )

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if len(self.samples) < _HISTOGRAM_SAMPLE_CAP:
            self.samples.append(value)
        self.bucket_counts[bisect_left(HISTOGRAM_BUCKET_BOUNDS, value)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile.

        Exact over the raw reservoir while it holds every observation;
        once observations outnumber retained samples (reservoir
        saturated, or a lossy merge), the estimate comes from the log
        buckets instead — at worst one bucket boundary off, but never
        blind to a post-saturation distribution shift.
        """
        if not self.samples and not any(self.bucket_counts):
            return 0.0
        if self.count <= len(self.samples):
            ordered = sorted(self.samples)
            rank = min(
                len(ordered) - 1, max(0, round(q / 100.0 * (len(ordered) - 1)))
            )
            return ordered[rank]
        return self._bucket_percentile(q)

    def _bucket_percentile(self, q: float) -> float:
        """Percentile from the bucket counts (upper-bound estimate)."""
        bucketed = sum(self.bucket_counts)
        if not bucketed:
            return 0.0
        rank = min(bucketed - 1, max(0, round(q / 100.0 * (bucketed - 1))))
        cumulative = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            cumulative += bucket_count
            if cumulative > rank:
                if index < len(HISTOGRAM_BUCKET_BOUNDS):
                    return min(HISTOGRAM_BUCKET_BOUNDS[index], self.maximum)
                return self.maximum  # overflow bucket
        return self.maximum

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """Prometheus-style ``(le, cumulative_count)`` pairs.

        Only boundaries whose cumulative count changed are included
        (plus the final ``+Inf`` bucket), so exports stay compact.
        """
        pairs: list[tuple[float, int]] = []
        cumulative = 0
        for bound, bucket_count in zip(
            HISTOGRAM_BUCKET_BOUNDS, self.bucket_counts
        ):
            cumulative += bucket_count
            if bucket_count:
                pairs.append((bound, cumulative))
        pairs.append((float("inf"), cumulative + self.bucket_counts[-1]))
        return pairs

    def summary(self) -> dict:
        if not self.count:
            return {"count": 0}
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Name-keyed store of counters, gauges and histograms."""

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter()
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge()
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram()
        return metric

    def histograms(self) -> dict[str, Histogram]:
        """Live histogram objects by name (for bucket-level exporters)."""
        return dict(self._histograms)

    def snapshot(self) -> dict:
        """JSON-serializable view of every metric, sorted by name."""
        return {
            "counters": {
                name: self._counters[name].value for name in sorted(self._counters)
            },
            "gauges": {name: self._gauges[name].value for name in sorted(self._gauges)},
            "histograms": {
                name: self._histograms[name].summary()
                for name in sorted(self._histograms)
            },
        }

    def dump(self) -> dict:
        """Full lossless state, including raw histogram samples.

        Unlike :meth:`snapshot` (a human/JSON summary), a dump can be
        merged into another registry without losing information — the
        transport format for per-worker metrics in multi-process
        benchmark runs.  Keys are sorted so dumps (and anything
        serialized from them) are deterministic and diff cleanly.
        """
        return {
            "counters": {
                name: self._counters[name].value for name in sorted(self._counters)
            },
            "gauges": {name: self._gauges[name].value for name in sorted(self._gauges)},
            "histograms": {
                name: {
                    "count": self._histograms[name].count,
                    "total": self._histograms[name].total,
                    "minimum": self._histograms[name].minimum,
                    "maximum": self._histograms[name].maximum,
                    "samples": list(self._histograms[name].samples),
                    "bucket_counts": list(self._histograms[name].bucket_counts),
                }
                for name in sorted(self._histograms)
            },
        }

    def merge(self, dump: dict) -> None:
        """Fold a :meth:`dump` from another registry into this one.

        Counters and histogram totals add; gauges are last-write-wins;
        histogram sample reservoirs extend up to the cap.  Used to
        aggregate per-worker metrics after a parallel workload run.
        """
        for name, value in dump.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in dump.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, payload in dump.get("histograms", {}).items():
            histogram = self.histogram(name)
            histogram.count += payload["count"]
            histogram.total += payload["total"]
            histogram.minimum = min(histogram.minimum, payload["minimum"])
            histogram.maximum = max(histogram.maximum, payload["maximum"])
            room = _HISTOGRAM_SAMPLE_CAP - len(histogram.samples)
            if room > 0:
                histogram.samples.extend(payload["samples"][:room])
            bucket_counts = payload.get("bucket_counts")
            if bucket_counts is None:
                # Pre-bucket dump: rebucket its samples, the best
                # available stand-in for the counts it never kept.
                for value in payload["samples"]:
                    histogram.bucket_counts[
                        bisect_left(HISTOGRAM_BUCKET_BOUNDS, value)
                    ] += 1
            else:
                for index, bucket_count in enumerate(bucket_counts):
                    histogram.bucket_counts[index] += bucket_count

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide registry."""
    return _REGISTRY


def snapshot() -> dict:
    return _REGISTRY.snapshot()


def reset() -> None:
    _REGISTRY.reset()
