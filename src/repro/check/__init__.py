"""Differential correctness oracle for the numpy mini-DBMS.

Every metric this reproduction reports — true cardinalities, Q-Error,
P-Error, end-to-end runtimes — assumes the engine executes SQL
correctly.  This package independently validates that assumption:

- :mod:`repro.check.oracle` loads any :class:`~repro.engine.database.
  Database` into an in-memory SQLite instance (stdlib ``sqlite3``) and
  re-executes every query and every enumerated sub-plan there,
  asserting row-count equality against the engine executor and against
  :class:`~repro.core.truecards.TrueCardinalityService`;
- :mod:`repro.check.fuzz` generates random schemas, data and
  multi-join queries from a seed (skew, NULLs, duplicate join keys,
  dangling keys, empty and single-row tables);
- :mod:`repro.check.invariants` runs metamorphic invariants per case:
  exec-cache ON vs OFF, serial vs parallel workers, checkpoint-resume
  vs fresh run, and plan-choice independence (every plan the planner
  could pick must return the same count);
- :mod:`repro.check.shrink` minimizes a failing case to a small repro;
- :mod:`repro.check.artifacts` serializes it as a JSON bundle (schema
  + rows + SQL) that replays via ``repro check --replay`` or pytest;
- :mod:`repro.check.runner` drives the whole sweep (the ``repro
  check`` CLI subcommand and the CI fuzz jobs).
"""

from repro.check.artifacts import load_artifact, write_artifact
from repro.check.fuzz import CheckCase, FuzzConfig, build_case
from repro.check.invariants import ALL_INVARIANTS, Discrepancy
from repro.check.oracle import SQLiteOracle
from repro.check.runner import (
    CheckOptions,
    CheckReport,
    check_workload,
    replay_artifact,
    replay_command,
    run_check,
)

__all__ = [
    "ALL_INVARIANTS",
    "CheckCase",
    "CheckOptions",
    "CheckReport",
    "Discrepancy",
    "FuzzConfig",
    "SQLiteOracle",
    "build_case",
    "check_workload",
    "load_artifact",
    "replay_artifact",
    "replay_command",
    "run_check",
    "write_artifact",
]
