"""The differential-check driver behind ``repro check``.

Three entry points:

- :func:`run_check` — the fuzz sweep: generate ``cases`` seeded cases,
  compare each against the SQLite oracle, run the metamorphic
  invariants, shrink failures and write replay artifacts;
- :func:`replay_artifact` — re-run every check against a previously
  written artifact (regression corpus, CI-uploaded failures);
- :func:`check_workload` — validate a real benchmark workload (e.g.
  STATS-CEB) against the oracle: sub-plan counts, stored labels and the
  SQL parse/render round-trip.

Failures never raise mid-sweep: everything lands in the returned
:class:`CheckReport` so a 200-case run reports *all* discrepancies and
the CLI can print every replay command.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.check.artifacts import load_artifact, write_artifact
from repro.check.fuzz import CheckCase, FuzzConfig, build_case
from repro.check.invariants import (
    ALL_INVARIANTS,
    Discrepancy,
    check_batch,
    check_cache,
    check_oracle,
    check_parallel,
    check_planner_vectorised,
    check_plans,
    check_resume,
    parallel_applicable,
)
from repro.check.oracle import SQLiteOracle
from repro.check.shrink import shrink
from repro.core.injection import sub_plan_sets
from repro.core.truecards import TrueCardinalityService
from repro.engine.database import Database
from repro.engine.sql import parse_query, query_to_sql
from repro.engine.subsets import clear_space_cache
from repro.workloads.generator import Workload


@dataclass(frozen=True)
class CheckOptions:
    """Configuration of one ``repro check`` fuzz sweep."""

    seed: int = 0
    cases: int = 50
    oracle: bool = True
    invariants: tuple[str, ...] = ALL_INVARIANTS
    #: Where failing-case artifacts are written (``None`` = don't write).
    artifact_dir: str | Path | None = None
    config: FuzzConfig = field(default_factory=FuzzConfig)
    shrink_failures: bool = True
    #: The benchmark-harness invariants (``parallel``/``resume``) fork
    #: worker pools and re-run campaigns, so they sample every Nth case
    #: instead of every case.  The sampling is deterministic in the
    #: case index and reported in the CheckReport — never a silent skip.
    harness_every: int = 5


@dataclass
class CheckFailure:
    """One failing case: its discrepancy and the replay artifact."""

    case_name: str
    discrepancy: Discrepancy
    artifact: Path | None = None

    def describe(self) -> str:
        lines = [f"{self.case_name}: {self.discrepancy}"]
        if self.artifact is not None:
            lines.append(f"  replay: {replay_command(self.artifact)}")
        return "\n".join(lines)


@dataclass
class CheckReport:
    """Outcome of a fuzz sweep / replay / workload check."""

    cases_run: int = 0
    queries_checked: int = 0
    sub_plans_checked: int = 0
    invariants_run: dict[str, int] = field(default_factory=dict)
    #: Structural skips, by reason (e.g. fork unavailable) — reported,
    #: not silent.
    skipped: dict[str, int] = field(default_factory=dict)
    failures: list[CheckFailure] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        lines = [
            f"cases={self.cases_run} queries={self.queries_checked} "
            f"sub_plans={self.sub_plans_checked} "
            f"failures={len(self.failures)} "
            f"elapsed={self.elapsed_seconds:.1f}s"
        ]
        if self.invariants_run:
            counted = " ".join(
                f"{name}={count}"
                for name, count in sorted(self.invariants_run.items())
            )
            lines.append(f"invariants: {counted}")
        for reason, count in sorted(self.skipped.items()):
            lines.append(f"skipped ({reason}): {count} cases")
        for failure in self.failures:
            lines.append(failure.describe())
        return "\n".join(lines)


def replay_command(artifact: str | Path) -> str:
    """The shell command that replays one failing-case artifact."""
    return f"PYTHONPATH=src python -m repro.cli check --replay {artifact}"


_ORACLE_CHECKER = {"oracle": check_oracle}
_INVARIANT_CHECKERS = {
    "batch": check_batch,
    "cache": check_cache,
    "plans": check_plans,
    "planner-vectorised": check_planner_vectorised,
    "parallel": check_parallel,
    "resume": check_resume,
}
#: Invariants that spin up the full benchmark harness (sampled).
_HARNESS_INVARIANTS = ("parallel", "resume")


def _checks_for(
    options: CheckOptions, index: int
) -> list[tuple[str, object]]:
    checks: list[tuple[str, object]] = []
    if options.oracle:
        checks.append(("oracle", check_oracle))
    for name in options.invariants:
        if name in _HARNESS_INVARIANTS and index % options.harness_every:
            continue
        checks.append((name, _INVARIANT_CHECKERS[name]))
    return checks


def _first_failure(
    case: CheckCase, checks: list[tuple[str, object]]
) -> Discrepancy | None:
    for _, checker in checks:
        found = checker(case)
        if found:
            return found[0]
    return None


def check_case(
    case: CheckCase, options: CheckOptions, report: CheckReport
) -> list[Discrepancy]:
    """Run the configured checks over one case, updating ``report``."""
    discrepancies: list[Discrepancy] = []
    for name, checker in _checks_for(options, case.index):
        if name == "parallel" and not parallel_applicable(case):
            report.skipped["parallel: fork unavailable or <2 queries"] = (
                report.skipped.get(
                    "parallel: fork unavailable or <2 queries", 0
                )
                + 1
            )
            continue
        report.invariants_run[name] = report.invariants_run.get(name, 0) + 1
        discrepancies.extend(checker(case))
    return discrepancies


def _record_failure(
    case: CheckCase,
    discrepancy: Discrepancy,
    options: CheckOptions,
    report: CheckReport,
) -> None:
    artifact: Path | None = None
    final_case, final_discrepancy = case, discrepancy
    if options.shrink_failures:
        failing = _ORACLE_CHECKER | _INVARIANT_CHECKERS
        checker = failing[discrepancy.invariant]

        def fails(candidate: CheckCase) -> Discrepancy | None:
            found = checker(candidate)
            return found[0] if found else None

        shrunk, shrunk_discrepancy = shrink(case, fails)
        if shrunk_discrepancy is not None:
            final_case, final_discrepancy = shrunk, shrunk_discrepancy
    if options.artifact_dir is not None:
        artifact = write_artifact(
            final_case,
            Path(options.artifact_dir)
            / f"{case.name}-{final_discrepancy.invariant}.json",
            failure=final_discrepancy,
        )
    report.failures.append(
        CheckFailure(
            case_name=case.name,
            discrepancy=final_discrepancy,
            artifact=artifact,
        )
    )


def run_check(options: CheckOptions) -> CheckReport:
    """Run the full fuzz sweep described by ``options``."""
    report = CheckReport()
    started = time.perf_counter()
    for index in range(options.cases):
        # Every fuzz case is a fresh join-graph shape; without this the
        # per-shape space memo (and the numpy level templates each space
        # pins) would fill with shapes no later case revisits.
        clear_space_cache()
        case = build_case(options.seed, index, options.config)
        report.cases_run += 1
        report.queries_checked += len(case.queries)
        report.sub_plans_checked += sum(
            len(sub_plan_sets(query)) for query in case.queries
        )
        # One recorded failure (and one shrink pass) per invariant per
        # case: a single root cause often disagrees on many sub-plans.
        reported: set[str] = set()
        for discrepancy in check_case(case, options, report):
            if discrepancy.invariant in reported:
                continue
            reported.add(discrepancy.invariant)
            _record_failure(case, discrepancy, options, report)
    report.elapsed_seconds = time.perf_counter() - started
    return report


def replay_artifact(
    path: str | Path, options: CheckOptions | None = None
) -> CheckReport:
    """Re-run every configured check against one saved artifact.

    Harness invariants are *not* sampled on replay — an artifact is a
    known repro, so everything runs.
    """
    options = options or CheckOptions()
    case, _recorded = load_artifact(path)
    report = CheckReport()
    started = time.perf_counter()
    report.cases_run = 1
    report.queries_checked = len(case.queries)
    report.sub_plans_checked = sum(
        len(sub_plan_sets(query)) for query in case.queries
    )
    checks: list[tuple[str, object]] = []
    if options.oracle:
        checks.append(("oracle", check_oracle))
    checks.extend(
        (name, _INVARIANT_CHECKERS[name]) for name in options.invariants
    )
    for name, checker in checks:
        if name == "parallel" and not parallel_applicable(case):
            report.skipped["parallel: fork unavailable or <2 queries"] = 1
            continue
        report.invariants_run[name] = report.invariants_run.get(name, 0) + 1
        for discrepancy in checker(case):
            report.failures.append(
                CheckFailure(
                    case_name=case.name,
                    discrepancy=discrepancy,
                    artifact=Path(path),
                )
            )
    report.elapsed_seconds = time.perf_counter() - started
    return report


def check_workload(
    database: Database,
    workload: Workload,
    limit: int | None = None,
) -> CheckReport:
    """Validate a real benchmark workload against the SQLite oracle.

    For every labelled query (up to ``limit``): the oracle's sub-plan
    counts must match both the workload's stored labels and a freshly
    computed :class:`TrueCardinalityService` map, and the query must
    survive the SQL round-trip (render → parse → identical canonical
    key).
    """
    report = CheckReport()
    started = time.perf_counter()
    service = TrueCardinalityService(database)
    queries = workload.queries[: limit if limit is not None else None]
    with SQLiteOracle(database) as oracle:
        for labeled in queries:
            query = labeled.query
            report.queries_checked += 1

            rendered = query_to_sql(query)
            reparsed = parse_query(
                rendered, join_graph=database.join_graph, name=query.name
            )
            if reparsed.key() != query.key():
                report.failures.append(
                    CheckFailure(
                        case_name=query.name,
                        discrepancy=Discrepancy(
                            "roundtrip",
                            query.name,
                            "SQL render/parse round-trip changed the "
                            f"query: {rendered}",
                        ),
                    )
                )

            engine = service.sub_plan_cards(query)
            reference = oracle.sub_plan_counts(query)
            report.sub_plans_checked += len(reference)
            for subset in sorted(reference, key=sorted):
                expected = reference[subset]
                stored = labeled.sub_plan_true_cards.get(subset)
                if engine.get(subset) != expected:
                    report.failures.append(
                        CheckFailure(
                            case_name=query.name,
                            discrepancy=Discrepancy(
                                "oracle",
                                query.name,
                                f"sub-plan {sorted(subset)}: engine "
                                f"{engine.get(subset)} != SQLite {expected}",
                            ),
                        )
                    )
                if stored is not None and stored != expected:
                    report.failures.append(
                        CheckFailure(
                            case_name=query.name,
                            discrepancy=Discrepancy(
                                "labels",
                                query.name,
                                f"sub-plan {sorted(subset)}: stored label "
                                f"{stored} != SQLite {expected}",
                            ),
                        )
                    )
    report.cases_run = len(queries)
    report.elapsed_seconds = time.perf_counter() - started
    return report
