"""Delta-debugging-lite minimization of failing fuzz cases.

Given a failing :class:`CheckCase` and a ``fails`` predicate that
re-runs the failing check, :func:`shrink` greedily tries smaller
candidates and keeps any that still fail:

1. reduce to a single failing query;
2. drop leaf tables from the query (tree queries stay connected);
3. drop predicates one at a time;
4. drop tables the remaining queries never touch from the database;
5. bisect each table's rows (keep a prefix, then halves).

The result is the case that gets serialized as the replay artifact, so
smaller is strictly better for whoever debugs it — but minimality is
not guaranteed and the loop is bounded by ``max_evaluations`` calls to
``fails`` to keep fuzz sweeps fast even when shrinking thrashes.
"""

from __future__ import annotations

from typing import Callable

from repro.check.fuzz import CheckCase
from repro.check.invariants import Discrepancy
from repro.engine.database import Database
from repro.engine.query import Query

#: ``fails`` re-runs engine + oracle work, so cap how often shrink may
#: call it per case.
DEFAULT_MAX_EVALUATIONS = 80


class _Budget:
    def __init__(self, limit: int):
        self.remaining = limit

    def spend(self) -> bool:
        if self.remaining <= 0:
            return False
        self.remaining -= 1
        return True


def _with(
    case: CheckCase,
    database: Database | None = None,
    queries: list[Query] | None = None,
) -> CheckCase:
    return CheckCase(
        seed=case.seed,
        index=case.index,
        database=database if database is not None else case.database,
        queries=queries if queries is not None else case.queries,
    )


def _try(
    candidate: CheckCase,
    fails: Callable[[CheckCase], Discrepancy | None],
    budget: _Budget,
) -> Discrepancy | None:
    if not budget.spend():
        return None
    try:
        return fails(candidate)
    except Exception:
        # A candidate that crashes the checker is not a valid repro of
        # the *original* discrepancy; discard it.
        return None


def _leaf_tables(query: Query) -> list[str]:
    """Tables appearing in at most one join edge (safe to drop)."""
    if len(query.tables) <= 1:
        return []
    degree = {table: 0 for table in query.tables}
    for edge in query.join_edges:
        degree[edge.left] += 1
        degree[edge.right] += 1
    return sorted(table for table, count in degree.items() if count <= 1)


def _shrink_query(
    case: CheckCase,
    fails: Callable[[CheckCase], Discrepancy | None],
    budget: _Budget,
) -> tuple[CheckCase, Discrepancy | None]:
    """Steps 2 + 3: fewer joined tables, then fewer predicates."""
    best = case
    last: Discrepancy | None = None
    changed = True
    while changed and budget.remaining:
        changed = False
        query = best.queries[0]
        for leaf in _leaf_tables(query):
            candidate = _with(
                best, queries=[query.subquery(query.tables - {leaf})]
            )
            failure = _try(candidate, fails, budget)
            if failure is not None:
                best, last, changed = candidate, failure, True
                break
        if changed:
            continue
        for drop in range(len(query.predicates)):
            predicates = (
                query.predicates[:drop] + query.predicates[drop + 1 :]
            )
            candidate = _with(
                best,
                queries=[
                    Query(
                        tables=query.tables,
                        join_edges=query.join_edges,
                        predicates=predicates,
                        name=query.name,
                    )
                ],
            )
            failure = _try(candidate, fails, budget)
            if failure is not None:
                best, last, changed = candidate, failure, True
                break
    return best, last


def _drop_unused_tables(case: CheckCase) -> CheckCase:
    """Step 4: restrict the database to tables the queries mention."""
    used = set().union(*(query.tables for query in case.queries))
    if used == set(case.database.tables):
        return case
    graph_cls = type(case.database.join_graph)
    graph = graph_cls()
    for edge in case.database.join_graph.edges:
        if edge.left in used and edge.right in used:
            graph.add(edge)
    database = Database(
        name=case.database.name,
        tables={
            name: table
            for name, table in case.database.tables.items()
            if name in used
        },
        join_graph=graph,
    )
    return _with(case, database=database)


def _with_table_prefix(case: CheckCase, table: str, rows: int) -> CheckCase:
    import numpy as np

    old = case.database.tables[table]
    tables = dict(case.database.tables)
    tables[table] = old.take(np.arange(rows))
    database = Database(
        name=case.database.name,
        tables=tables,
        join_graph=case.database.join_graph,
    )
    return _with(case, database=database)


def _shrink_rows(
    case: CheckCase,
    fails: Callable[[CheckCase], Discrepancy | None],
    budget: _Budget,
) -> tuple[CheckCase, Discrepancy | None]:
    """Step 5: per-table prefix bisection of the row sets."""
    best = case
    last: Discrepancy | None = None
    for table in sorted(case.database.tables):
        while budget.remaining:
            rows = best.database.tables[table].num_rows
            if rows <= 1:
                break
            candidate = _with_table_prefix(best, table, rows // 2)
            failure = _try(candidate, fails, budget)
            if failure is None:
                break
            best, last = candidate, failure
    return best, last


def shrink(
    case: CheckCase,
    fails: Callable[[CheckCase], Discrepancy | None],
    max_evaluations: int = DEFAULT_MAX_EVALUATIONS,
) -> tuple[CheckCase, Discrepancy | None]:
    """Minimize ``case`` while ``fails`` keeps reporting a discrepancy.

    Returns the smallest still-failing case found and the discrepancy
    it produced (``None`` only if even the original stopped failing,
    which callers treat as a flake and report unshrunk).
    """
    budget = _Budget(max_evaluations)
    best = case
    last: Discrepancy | None = None

    # Step 1: a single failing query, preferring the fewest tables.
    if len(case.queries) > 1:
        singles = sorted(case.queries, key=lambda q: (len(q.tables), q.name))
        for query in singles:
            candidate = _with(case, queries=[query])
            failure = _try(candidate, fails, budget)
            if failure is not None:
                best, last = candidate, failure
                break

    if len(best.queries) == 1:
        shrunk, failure = _shrink_query(best, fails, budget)
        if failure is not None:
            best, last = shrunk, failure

    candidate = _drop_unused_tables(best)
    if candidate is not best:
        failure = _try(candidate, fails, budget)
        if failure is not None:
            best, last = candidate, failure

    shrunk, failure = _shrink_rows(best, fails, budget)
    if failure is not None:
        best, last = shrunk, failure

    if last is None:
        last = _try(best, fails, _Budget(1))
    return best, last
