"""Oracle comparison and metamorphic invariants over one fuzz case.

Each checker takes a :class:`~repro.check.fuzz.CheckCase` and returns a
list of :class:`Discrepancy` records (empty = the case passes).  The
checks are:

``oracle``
    Triple agreement on every enumerated sub-plan of every query:
    SQLite reference count == :class:`TrueCardinalityService` count ==
    the row count produced by actually executing the planner's chosen
    plan.
``cache``
    Result-reuse must be invisible: the service with shared
    intermediates + exec cache and the service with both disabled must
    report identical sub-plan maps, and an executor with an
    :class:`ExecutionContext` must count exactly like a bare one.
``plans``
    Plan-choice independence: every physical plan the planner *could*
    have picked (all join orders × all legal join methods × both scan
    methods) must produce the same count as the chosen one.
``planner-vectorised``
    Scalar-vs-batched DP scoring: under fuzzed cardinality maps —
    the true counts plus adversarial variants (all-equal values that
    force cost ties, zeros, sub-row fractions, seeded perturbations) —
    the scalar differential oracle and the vectorised planner must
    produce identical ``(estimated_cost, plan)``, exact float equality
    included, proving the codified ``(cost, method_rank, left_mask)``
    tie-break order is applied identically in both paths.
``parallel``
    A fork-based multi-worker benchmark run must report the same
    result cardinalities as a serial run of the same workload.
``resume``
    A campaign checkpointed halfway and resumed must splice into the
    same results as an uninterrupted run.
``batch``
    Batch-vs-loop equivalence: for every estimator in the fast sweep
    set, ``estimate_batch`` over a query's whole sub-plan space must
    match the per-query ``estimate`` loop within ``BATCH_RTOL``
    relative tolerance — the contract the batched inference hot path
    (:func:`repro.core.injection.estimate_sub_plans`) relies on.

``parallel`` and ``resume`` run the full benchmark harness per case,
so the runner only samples them on a fraction of cases.
"""

from __future__ import annotations

import math
import tempfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.check.fuzz import CheckCase
from repro.check.oracle import SQLiteOracle
from repro.core.benchmark import EndToEndBenchmark
from repro.core.injection import sub_plan_queries
from repro.core.parallel import fork_available
from repro.core.truecards import TrueCardinalityService
from repro.engine.cache import ExecutionContext
from repro.engine.executor import Executor
from repro.engine.planner import Planner
from repro.engine.plans import (
    JOIN_HASH,
    JOIN_INDEX_NL,
    JOIN_MERGE,
    SCAN_INDEX,
    SCAN_SEQ,
    JoinNode,
    PlanNode,
    ScanNode,
)
from repro.engine.query import LabeledQuery, Query
from repro.engine.subsets import space_of
from repro.estimators.multihist import MultiHistEstimator
from repro.estimators.pessest import PessimisticEstimator
from repro.estimators.postgres import PostgresEstimator
from repro.estimators.truecard import TrueCardEstimator
from repro.resilience.checkpoint import CampaignCheckpoint
from repro.workloads.generator import Workload

#: The metamorphic invariants, in the order the runner applies them.
#: The SQLite oracle comparison is controlled separately (``--oracle``).
ALL_INVARIANTS = (
    "batch",
    "cache",
    "plans",
    "planner-vectorised",
    "parallel",
    "resume",
)

#: Relative tolerance for batch-vs-loop equivalence.  Vectorised
#: implementations may reorder float reductions (stacked matmuls vs
#: per-row dot products), which moves the last ulp; anything beyond
#: 1e-9 relative is a genuine semantic divergence.
BATCH_RTOL = 1e-9

#: Caps for exhaustive plan enumeration: ways kept per subset mask and
#: executed plans per query.  Fuzz queries join <= 4 tables, so these
#: caps are rarely binding; they bound worst-case runtime, and the
#: runner logs nothing because the *chosen* plan is always included.
MAX_PLANS_PER_MASK = 8
MAX_PLANS_PER_QUERY = 48


@dataclass(frozen=True)
class Discrepancy:
    """One detected disagreement, attributable to a query and invariant."""

    invariant: str
    query: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.invariant}] {self.query}: {self.detail}"


def _true_counts(case: CheckCase) -> dict[str, dict[frozenset[str], int]]:
    service = TrueCardinalityService(case.database)
    return {q.name: service.sub_plan_cards(q) for q in case.queries}


# -- oracle -------------------------------------------------------------------


def check_oracle(case: CheckCase) -> list[Discrepancy]:
    """SQLite vs TrueCardinalityService vs executed plan, per sub-plan."""
    discrepancies: list[Discrepancy] = []
    service = TrueCardinalityService(case.database)
    planner = Planner(case.database)
    executor = Executor(case.database)
    with SQLiteOracle(case.database) as oracle:
        for query in case.queries:
            engine = service.sub_plan_cards(query)
            reference = oracle.sub_plan_counts(query)
            if set(engine) != set(reference):
                discrepancies.append(
                    Discrepancy(
                        "oracle",
                        query.name,
                        "sub-plan spaces differ: engine enumerated "
                        f"{sorted(map(sorted, engine))} vs oracle "
                        f"{sorted(map(sorted, reference))}",
                    )
                )
                continue
            for subset in sorted(engine, key=sorted):
                if engine[subset] != reference[subset]:
                    discrepancies.append(
                        Discrepancy(
                            "oracle",
                            query.name,
                            f"sub-plan {sorted(subset)}: engine counted "
                            f"{engine[subset]}, SQLite counted "
                            f"{reference[subset]}",
                        )
                    )
            # Executing the plan the planner actually picks under true
            # cardinalities must reproduce the full-query count too.
            cards = {s: float(c) for s, c in engine.items()}
            plan = planner.plan(query, cards).plan
            executed = executor.count(plan)
            if executed != reference[query.tables]:
                discrepancies.append(
                    Discrepancy(
                        "oracle",
                        query.name,
                        f"executed plan returned {executed}, SQLite "
                        f"counted {reference[query.tables]}",
                    )
                )
    return discrepancies


# -- batch --------------------------------------------------------------------


def check_batch(case: CheckCase) -> list[Discrepancy]:
    """``estimate_batch`` must match the per-query ``estimate`` loop.

    Fits the statistics-backed estimator families (the ones with real
    vectorised or memoized batch paths reachable from a fuzz database)
    and compares both code paths over every query's full sub-plan
    space.  Learned families are covered by the tests/estimators sweep,
    which has trained models to hand; fuzz cases are too small to train
    on.
    """
    discrepancies: list[Discrepancy] = []
    estimators = [
        PostgresEstimator().fit(case.database),
        MultiHistEstimator().fit(case.database),
        PessimisticEstimator().fit(case.database),
    ]
    for query in case.queries:
        sub = sub_plan_queries(query)
        subsets = list(sub)
        queries = list(sub.values())
        for estimator in estimators:
            looped = [float(estimator.estimate(q)) for q in queries]
            batched = estimator.estimate_batch(queries)
            if len(batched) != len(looped):
                discrepancies.append(
                    Discrepancy(
                        "batch",
                        query.name,
                        f"{estimator.name}.estimate_batch returned "
                        f"{len(batched)} estimates for {len(looped)} "
                        "sub-plans",
                    )
                )
                continue
            for subset, loop_value, batch_value in zip(
                subsets, looped, batched
            ):
                if not math.isclose(
                    loop_value,
                    float(batch_value),
                    rel_tol=BATCH_RTOL,
                    abs_tol=1e-12,
                ):
                    discrepancies.append(
                        Discrepancy(
                            "batch",
                            query.name,
                            f"{estimator.name} sub-plan {sorted(subset)}: "
                            f"loop estimated {loop_value!r}, batch "
                            f"estimated {float(batch_value)!r}",
                        )
                    )
    return discrepancies


# -- cache --------------------------------------------------------------------


def check_cache(case: CheckCase) -> list[Discrepancy]:
    """Exec-cache and shared-intermediate reuse must not change counts."""
    discrepancies: list[Discrepancy] = []
    cached = TrueCardinalityService(
        case.database, use_exec_cache=True, share_intermediates=True
    )
    plain = TrueCardinalityService(
        case.database, use_exec_cache=False, share_intermediates=False
    )
    planner = Planner(case.database)
    bare_executor = Executor(case.database)
    context_executor = Executor(
        case.database, context=ExecutionContext(case.database)
    )
    for query in case.queries:
        with_reuse = cached.sub_plan_cards(query)
        without = plain.sub_plan_cards(query)
        for subset in sorted(without, key=sorted):
            if with_reuse.get(subset) != without[subset]:
                discrepancies.append(
                    Discrepancy(
                        "cache",
                        query.name,
                        f"sub-plan {sorted(subset)}: cached service "
                        f"counted {with_reuse.get(subset)}, plain "
                        f"service counted {without[subset]}",
                    )
                )
        cards = {s: float(c) for s, c in without.items()}
        plan = planner.plan(query, cards).plan
        # Twice through the context-holding executor: the second pass
        # serves scans and hash builds from cache and must still agree.
        counts = (
            bare_executor.count(plan),
            context_executor.count(plan),
            context_executor.count(plan),
        )
        if len(set(counts)) != 1:
            discrepancies.append(
                Discrepancy(
                    "cache",
                    query.name,
                    "executor counts diverge (bare, cold-cache, "
                    f"warm-cache) = {counts}",
                )
            )
    return discrepancies


# -- plan-choice independence -------------------------------------------------


def _enumerate_plans(query: Query, database) -> list[PlanNode]:
    """Up to MAX_PLANS_PER_QUERY distinct physical plans for ``query``.

    Mirrors the planner's legality rules: scans may be sequential or
    (when a primary-key predicate exists) index scans; joins may be
    hash or merge, plus index-NL when the inner side is a base-table
    scan; the join edge is oriented so its ``left`` table lives in the
    left sub-plan.
    """
    space = space_of(query)
    memo: dict[int, list[PlanNode]] = {}

    def scans(table: str) -> list[PlanNode]:
        predicates = query.predicates_on(table)
        nodes: list[PlanNode] = [
            ScanNode(
                tables=frozenset((table,)),
                table=table,
                predicates=predicates,
                method=SCAN_SEQ,
            )
        ]
        primary_key = database.tables[table].schema.primary_key
        if primary_key is not None and any(
            p.column == primary_key for p in predicates
        ):
            nodes.append(
                ScanNode(
                    tables=frozenset((table,)),
                    table=table,
                    predicates=predicates,
                    method=SCAN_INDEX,
                    index_column=primary_key,
                )
            )
        return nodes

    def plans_for(mask: int) -> list[PlanNode]:
        if mask in memo:
            return memo[mask]
        subset = space.tables_of(mask)
        if len(subset) == 1:
            memo[mask] = scans(next(iter(subset)))
            return memo[mask]
        nodes: list[PlanNode] = []
        for left_mask, right_mask, edge in space.splits[mask]:
            for left_plan in plans_for(left_mask):
                for right_plan in plans_for(right_mask):
                    oriented = (
                        edge
                        if edge.left in left_plan.tables
                        else edge.reversed()
                    )
                    methods = [JOIN_HASH, JOIN_MERGE]
                    if isinstance(right_plan, ScanNode):
                        methods.append(JOIN_INDEX_NL)
                    for method in methods:
                        nodes.append(
                            JoinNode(
                                tables=subset,
                                left=left_plan,
                                right=right_plan,
                                edge=oriented,
                                method=method,
                            )
                        )
                        if len(nodes) >= MAX_PLANS_PER_MASK:
                            memo[mask] = nodes
                            return nodes
        memo[mask] = nodes
        return nodes

    return plans_for(space.full_mask)[:MAX_PLANS_PER_QUERY]


def check_plans(case: CheckCase) -> list[Discrepancy]:
    """Every legal physical plan must produce the same count."""
    discrepancies: list[Discrepancy] = []
    executor = Executor(case.database)
    reference = _true_counts(case)
    for query in case.queries:
        expected = reference[query.name][query.tables]
        for plan in _enumerate_plans(query, case.database):
            got = executor.count(plan)
            if got != expected:
                discrepancies.append(
                    Discrepancy(
                        "plans",
                        query.name,
                        f"plan returned {got}, expected {expected}:\n"
                        + plan.describe(),
                    )
                )
    return discrepancies


# -- planner-vectorised -------------------------------------------------------


def _card_map_variants(
    true_cards: dict[frozenset[str], float],
    rng: np.random.Generator,
) -> dict[str, dict[frozenset[str], float]]:
    """Adversarial cardinality maps for the scalar-vs-vectorised diff.

    Beyond the true counts, each variant targets a tie-breaking or
    clamping edge: constant maps make *every* candidate cost tie (the
    total order alone decides), zeros exercise the ``max(0, ·)`` clamps
    and zero-page index paths, sub-row fractions hit the learned-
    estimator regime of cards below one row, and the perturbed map
    draws from a small tie-prone pool so some — but not all — costs
    collide.
    """
    subsets = sorted(true_cards, key=sorted)
    pool = np.array([0.0, 0.5, 1.0, 2.0, 1000.0])
    return {
        "true": true_cards,
        "ties": {s: 1.0 for s in subsets},
        "zeros": {s: 0.0 for s in subsets},
        "sub-row": {s: 0.25 for s in subsets},
        "perturbed": {s: float(rng.choice(pool)) for s in subsets},
    }


def check_planner_vectorised(case: CheckCase) -> list[Discrepancy]:
    """Scalar and batched DP scoring must agree bit for bit."""
    discrepancies: list[Discrepancy] = []
    scalar = Planner(case.database, vectorised=False)
    vector = Planner(case.database, vectorised=True)
    service = TrueCardinalityService(case.database)
    rng = np.random.default_rng(np.random.SeedSequence([case.seed, case.index]))
    for query in case.queries:
        true_cards = {
            subset: float(count)
            for subset, count in service.sub_plan_cards(query).items()
        }
        for label, cards in _card_map_variants(true_cards, rng).items():
            expected = scalar.plan(query, cards)
            got = vector.plan(query, cards)
            if float(expected.estimated_cost) != float(got.estimated_cost):
                discrepancies.append(
                    Discrepancy(
                        "planner-vectorised",
                        query.name,
                        f"cards[{label}]: scalar cost "
                        f"{expected.estimated_cost!r} != vectorised "
                        f"{got.estimated_cost!r}",
                    )
                )
            elif expected.plan != got.plan:
                discrepancies.append(
                    Discrepancy(
                        "planner-vectorised",
                        query.name,
                        f"cards[{label}]: same cost "
                        f"{expected.estimated_cost!r} but different plans:\n"
                        f"scalar:\n{expected.plan.describe()}\n"
                        f"vectorised:\n{got.plan.describe()}",
                    )
                )
    return discrepancies


# -- parallel -----------------------------------------------------------------


def _labeled_workload(case: CheckCase) -> Workload:
    reference = _true_counts(case)
    return Workload(
        name=case.name,
        database_name=case.database.name,
        queries=[
            LabeledQuery(
                query=query,
                true_cardinality=reference[query.name][query.tables],
                sub_plan_true_cards=reference[query.name],
            )
            for query in case.queries
        ],
    )


def _run_signature(run) -> list[tuple[str, int | None, bool, bool]]:
    return [
        (qr.query_name, qr.result_cardinality, qr.aborted, qr.failed)
        for qr in run.query_runs
    ]


def check_parallel(case: CheckCase) -> list[Discrepancy]:
    """Serial and 2-worker benchmark runs must report identical results.

    Structurally skipped (not silently — the runner records the reason)
    when forking is unavailable or the case has fewer than two queries,
    since the benchmark falls back to the serial loop in both
    situations and the invariant would compare a run against itself.
    """
    if not fork_available() or len(case.queries) < 2:
        return []
    workload = _labeled_workload(case)
    serial = EndToEndBenchmark(
        case.database, workload, compute_p_errors=False
    ).run(TrueCardEstimator())
    parallel = EndToEndBenchmark(
        case.database, workload, compute_p_errors=False, workers=2
    ).run(TrueCardEstimator())
    if _run_signature(serial) != _run_signature(parallel):
        return [
            Discrepancy(
                "parallel",
                case.name,
                f"serial results {_run_signature(serial)} != "
                f"2-worker results {_run_signature(parallel)}",
            )
        ]
    return []


def parallel_applicable(case: CheckCase) -> bool:
    """Whether :func:`check_parallel` can actually exercise forking."""
    return fork_available() and len(case.queries) >= 2


# -- resume -------------------------------------------------------------------


def check_resume(case: CheckCase) -> list[Discrepancy]:
    """Checkpoint-resume must splice into the same results as a fresh run."""
    workload = _labeled_workload(case)

    def bench() -> EndToEndBenchmark:
        return EndToEndBenchmark(
            case.database, workload, compute_p_errors=False
        )

    fresh = bench().run(TrueCardEstimator())
    with tempfile.TemporaryDirectory(prefix="repro-check-") as tmp:
        path = Path(tmp) / "campaign.jsonl"
        half = max(1, len(workload.queries) // 2)
        first = CampaignCheckpoint(path)
        bench().run(TrueCardEstimator(), queries=workload.queries[:half],
                    checkpoint=first)
        first.close()
        resumed_checkpoint = CampaignCheckpoint.resume(path)
        resumed = bench().run(TrueCardEstimator(), checkpoint=resumed_checkpoint)
        resumed_checkpoint.close()
    if _run_signature(fresh) != _run_signature(resumed):
        return [
            Discrepancy(
                "resume",
                case.name,
                f"fresh results {_run_signature(fresh)} != resumed "
                f"results {_run_signature(resumed)}",
            )
        ]
    return []


_CHECKERS = {
    "batch": check_batch,
    "cache": check_cache,
    "plans": check_plans,
    "planner-vectorised": check_planner_vectorised,
    "parallel": check_parallel,
    "resume": check_resume,
}


def run_invariants(
    case: CheckCase, invariants: tuple[str, ...] = ALL_INVARIANTS
) -> list[Discrepancy]:
    """Run the selected metamorphic invariants over one case."""
    discrepancies: list[Discrepancy] = []
    for name in invariants:
        discrepancies.extend(_CHECKERS[name](case))
    return discrepancies
