"""Failing-case artifacts: JSON bundles of schema + rows + SQL.

When the fuzzer finds a discrepancy, the (shrunken) case is written as
a self-contained JSON document that commits everything needed to
reproduce it: the table schemas, every row (with explicit NULLs), the
join graph, the failing queries as SQL, and the failure record.  The
bundle replays through ``repro check --replay <file>`` or
:func:`repro.check.runner.replay_artifact`; the regression corpus under
``tests/check/artifacts/`` is replayed by the tier-1 suite on every CI
run.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.check.fuzz import CheckCase
from repro.check.invariants import Discrepancy
from repro.engine.catalog import ColumnMeta, JoinEdge, JoinGraph, TableSchema
from repro.engine.database import Database
from repro.engine.sql import parse_query, query_to_sql
from repro.engine.table import Table
from repro.engine.types import ColumnKind

ARTIFACT_SCHEMA_VERSION = 1
ARTIFACT_KIND = "repro-check-case"


def _column_values(table: Table, name: str) -> list:
    """Column values as JSON scalars, ``None`` at NULL positions."""
    column = table.column(name)
    values = column.values.tolist()
    for index in np.nonzero(column.null_mask)[0]:
        values[index] = None
    return values


def case_to_dict(
    case: CheckCase, failure: Discrepancy | None = None
) -> dict:
    """JSON-safe dict of a full check case (plus its failure, if any)."""
    tables = {}
    for name, table in case.database.tables.items():
        tables[name] = {
            "primary_key": table.schema.primary_key,
            "columns": [
                {
                    "name": meta.name,
                    "kind": meta.kind.name,
                    "is_key": meta.is_key,
                    "filterable": meta.filterable,
                }
                for meta in table.schema.columns
            ],
            "rows": {
                meta.name: _column_values(table, meta.name)
                for meta in table.schema.columns
            },
        }
    return {
        "schema_version": ARTIFACT_SCHEMA_VERSION,
        "kind": ARTIFACT_KIND,
        "seed": case.seed,
        "case": case.index,
        "database": {
            "name": case.database.name,
            "tables": tables,
            "join_edges": [
                {
                    "left": edge.left,
                    "left_column": edge.left_column,
                    "right": edge.right,
                    "right_column": edge.right_column,
                    "one_to_many": edge.one_to_many,
                }
                for edge in case.database.join_graph.edges
            ],
        },
        "queries": [
            {"name": query.name, "sql": query_to_sql(query)}
            for query in case.queries
        ],
        "failure": (
            {
                "invariant": failure.invariant,
                "query": failure.query,
                "detail": failure.detail,
            }
            if failure is not None
            else None
        ),
    }


def case_from_dict(payload: dict) -> CheckCase:
    """Rebuild a :class:`CheckCase` from :func:`case_to_dict` output."""
    if payload.get("kind") != ARTIFACT_KIND:
        raise ValueError(
            f"not a {ARTIFACT_KIND} artifact: kind={payload.get('kind')!r}"
        )
    if payload.get("schema_version") != ARTIFACT_SCHEMA_VERSION:
        raise ValueError(
            "unsupported artifact schema version "
            f"{payload.get('schema_version')!r}"
        )
    spec = payload["database"]
    tables: dict[str, Table] = {}
    for name, table_spec in spec["tables"].items():
        metas = tuple(
            ColumnMeta(
                name=column["name"],
                kind=ColumnKind[column["kind"]],
                filterable=column["filterable"],
                is_key=column["is_key"],
            )
            for column in table_spec["columns"]
        )
        schema = TableSchema(
            name=name, columns=metas, primary_key=table_spec["primary_key"]
        )
        arrays: dict[str, np.ndarray] = {}
        masks: dict[str, np.ndarray] = {}
        for meta in metas:
            raw = table_spec["rows"][meta.name]
            mask = np.array([value is None for value in raw], dtype=bool)
            filled = [0 if value is None else value for value in raw]
            arrays[meta.name] = np.asarray(filled, dtype=meta.kind.dtype)
            if mask.any():
                masks[meta.name] = mask
        tables[name] = Table.from_arrays(schema, arrays, masks)

    graph = JoinGraph()
    for edge in spec["join_edges"]:
        graph.add(
            JoinEdge(
                left=edge["left"],
                left_column=edge["left_column"],
                right=edge["right"],
                right_column=edge["right_column"],
                one_to_many=edge["one_to_many"],
            )
        )
    database = Database(name=spec["name"], tables=tables, join_graph=graph)
    queries = [
        parse_query(entry["sql"], join_graph=graph, name=entry["name"])
        for entry in payload["queries"]
    ]
    return CheckCase(
        seed=payload["seed"],
        index=payload["case"],
        database=database,
        queries=queries,
    )


def write_artifact(
    case: CheckCase, path: str | Path, failure: Discrepancy | None = None
) -> Path:
    """Serialize ``case`` (and its failure) as a JSON artifact file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(case_to_dict(case, failure), indent=2, sort_keys=True)
        + "\n"
    )
    return path


def load_artifact(path: str | Path) -> tuple[CheckCase, dict | None]:
    """Load an artifact file: the rebuilt case plus its failure record."""
    payload = json.loads(Path(path).read_text())
    return case_from_dict(payload), payload.get("failure")
