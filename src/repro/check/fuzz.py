"""Property-based fuzzing of the engine's schema/data/query space.

Generates random relational cases from a seed: a tree-shaped schema of
2–4 tables (PK-FK and FK-FK join edges), data engineered to hit the
edge cases that break join implementations — NULL join keys on both
sides, duplicate and dangling keys, heavy skew, empty and single-row
tables, constant columns — and random multi-join queries with random
range/equality/IN filters over them.

Every case is fully determined by ``(seed, index, FuzzConfig)``: the
same triple always regenerates the same schema, rows and queries, which
is what makes a failing case replayable from nothing but its seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine.catalog import ColumnMeta, JoinEdge, JoinGraph, TableSchema
from repro.engine.database import Database
from repro.engine.predicates import Predicate
from repro.engine.query import Query
from repro.engine.table import Table
from repro.engine.types import ColumnKind


@dataclass(frozen=True)
class FuzzConfig:
    """Knobs of the random case generator (all probabilities in [0, 1])."""

    min_tables: int = 2
    max_tables: int = 4
    max_rows: int = 100
    max_queries_per_case: int = 3
    max_predicates: int = 3
    #: Chance a join edge is FK-FK (both sides non-unique, NULL-able)
    #: instead of PK-FK.
    fk_fk_probability: float = 0.3
    #: Chance a NULL-able column actually receives NULLs; the fraction
    #: is then drawn up to ``max_null_frac``.
    null_probability: float = 0.45
    max_null_frac: float = 0.5
    empty_table_probability: float = 0.1
    single_row_probability: float = 0.1
    float_column_probability: float = 0.3
    #: Chance a child row's foreign key references a value absent from
    #: the parent side (a dangling key that must join to nothing).
    dangling_key_probability: float = 0.25


@dataclass
class CheckCase:
    """One differential-testing case: a database plus its queries."""

    seed: int
    index: int
    database: Database
    queries: list[Query] = field(default_factory=list)

    @property
    def name(self) -> str:
        return f"check-{self.seed}-{self.index}"


def _case_rng(seed: int, index: int) -> np.random.Generator:
    return np.random.default_rng(np.random.SeedSequence([seed, index]))


def _table_size(rng: np.random.Generator, config: FuzzConfig) -> int:
    roll = rng.random()
    if roll < config.empty_table_probability:
        return 0
    if roll < config.empty_table_probability + config.single_row_probability:
        return 1
    return int(rng.integers(2, max(3, config.max_rows + 1)))


def _null_mask(
    rng: np.random.Generator, n: int, config: FuzzConfig
) -> np.ndarray | None:
    if n == 0 or rng.random() >= config.null_probability:
        return None
    frac = rng.uniform(0.05, config.max_null_frac)
    return rng.random(n) < frac


def _skewed_refs(rng: np.random.Generator, n: int, domain: int) -> np.ndarray:
    """``n`` references into ``[0, domain)`` with power-law skew."""
    if domain <= 0:
        return np.zeros(n, dtype=np.int64)
    exponent = rng.uniform(1.0, 3.0)
    return np.minimum(
        (rng.random(n) ** exponent * domain).astype(np.int64), domain - 1
    )


def _attr_values(
    rng: np.random.Generator, n: int, kind: ColumnKind
) -> np.ndarray:
    """Values for a filterable attribute column.

    Small domains force duplicates; occasionally the column is constant
    (degenerate histograms) or includes negatives.
    """
    if kind is ColumnKind.FLOAT:
        if rng.random() < 0.1:
            return np.full(n, round(rng.uniform(-5, 5), 3))
        values = rng.uniform(-10.0, 10.0, n)
        return np.round(values, 3)
    domain = int(rng.integers(1, 12))
    low = int(rng.integers(-3, 2))
    if rng.random() < 0.1:
        return np.full(n, low, dtype=np.int64)
    return rng.integers(low, low + domain, n)


@dataclass
class _EdgePlan:
    parent: int
    child: int
    fk_fk: bool
    #: Shared small key domain for FK-FK edges (both sides draw from a
    #: window around it so some keys match many rows and some none).
    domain: int


def build_case(
    seed: int, index: int, config: FuzzConfig | None = None
) -> CheckCase:
    """Deterministically generate case ``index`` of fuzz run ``seed``."""
    config = config or FuzzConfig()
    rng = _case_rng(seed, index)

    num_tables = int(rng.integers(config.min_tables, config.max_tables + 1))
    edge_plans: list[_EdgePlan] = []
    for child in range(1, num_tables):
        parent = int(rng.integers(0, child))
        fk_fk = bool(rng.random() < config.fk_fk_probability)
        edge_plans.append(
            _EdgePlan(
                parent=parent,
                child=child,
                fk_fk=fk_fk,
                domain=int(rng.integers(2, 10)),
            )
        )

    # -- schemas ----------------------------------------------------------
    columns: dict[int, list[ColumnMeta]] = {}
    for i in range(num_tables):
        cols = [ColumnMeta("id", is_key=True, filterable=False)]
        for plan in edge_plans:
            if plan.child == i:
                cols.append(
                    ColumnMeta(f"fk_t{plan.parent}", is_key=True, filterable=False)
                )
            if plan.parent == i and plan.fk_fk:
                cols.append(
                    ColumnMeta(f"link_t{plan.child}", is_key=True, filterable=False)
                )
        for v in range(int(rng.integers(1, 3))):
            kind = (
                ColumnKind.FLOAT
                if rng.random() < config.float_column_probability
                else ColumnKind.INT
            )
            cols.append(ColumnMeta(f"v{v}", kind=kind))
        columns[i] = cols

    schemas = {
        i: TableSchema(f"t{i}", tuple(columns[i]), primary_key="id")
        for i in range(num_tables)
    }

    # -- data -------------------------------------------------------------
    sizes = {i: _table_size(rng, config) for i in range(num_tables)}
    arrays: dict[int, dict[str, np.ndarray]] = {}
    nulls: dict[int, dict[str, np.ndarray]] = {}
    for i in range(num_tables):
        n = sizes[i]
        arrays[i] = {"id": np.arange(n, dtype=np.int64)}
        nulls[i] = {}
        for meta in columns[i]:
            if meta.name == "id":
                continue
            if meta.name.startswith("fk_t") or meta.name.startswith("link_t"):
                continue  # key columns are filled from the edge plans below
            values = _attr_values(rng, n, meta.kind)
            arrays[i][meta.name] = values
            mask = _null_mask(rng, n, config)
            if mask is not None:
                nulls[i][meta.name] = mask

    for plan in edge_plans:
        child_n = sizes[plan.child]
        fk_name = f"fk_t{plan.parent}"
        if plan.fk_fk:
            link_name = f"link_t{plan.child}"
            parent_n = sizes[plan.parent]
            # Both sides draw from overlapping windows of a small shared
            # domain: duplicate matches, partial overlap, dangling keys.
            parent_vals = _skewed_refs(rng, parent_n, plan.domain)
            child_vals = _skewed_refs(rng, child_n, plan.domain + 2)
            arrays[plan.parent][link_name] = parent_vals
            arrays[plan.child][fk_name] = child_vals
            for table_index, name in (
                (plan.parent, link_name),
                (plan.child, fk_name),
            ):
                mask = _null_mask(rng, sizes[table_index], config)
                if mask is not None:
                    nulls[table_index][name] = mask
        else:
            parent_n = sizes[plan.parent]
            refs = _skewed_refs(rng, child_n, parent_n)
            dangling = rng.random(child_n) < config.dangling_key_probability
            refs = np.where(
                dangling, parent_n + rng.integers(1, 5, child_n), refs
            )
            arrays[plan.child][fk_name] = refs
            mask = _null_mask(rng, child_n, config)
            if mask is not None:
                nulls[plan.child][fk_name] = mask

    graph = JoinGraph()
    for plan in edge_plans:
        if plan.fk_fk:
            graph.add(
                JoinEdge(
                    left=f"t{plan.parent}",
                    left_column=f"link_t{plan.child}",
                    right=f"t{plan.child}",
                    right_column=f"fk_t{plan.parent}",
                    one_to_many=False,
                )
            )
        else:
            graph.add(
                JoinEdge(
                    left=f"t{plan.parent}",
                    left_column="id",
                    right=f"t{plan.child}",
                    right_column=f"fk_t{plan.parent}",
                    one_to_many=True,
                )
            )

    database = Database(
        name=f"fuzz-{seed}-{index}",
        tables={
            f"t{i}": Table.from_arrays(schemas[i], arrays[i], nulls[i])
            for i in range(num_tables)
        },
        join_graph=graph,
    )

    queries = _random_queries(rng, database, seed, index, config)
    return CheckCase(seed=seed, index=index, database=database, queries=queries)


# -- query generation ---------------------------------------------------------


def _connected_subset(
    rng: np.random.Generator, graph: JoinGraph, size: int
) -> frozenset[str]:
    tables = sorted(graph.tables)
    current = {tables[int(rng.integers(len(tables)))]}
    while len(current) < size:
        frontier = sorted(
            neighbor
            for table in current
            for neighbor in graph.neighbors(table)
            if neighbor not in current
        )
        if not frontier:
            break
        current.add(frontier[int(rng.integers(len(frontier)))])
    return frozenset(current)


def _predicate_value(
    rng: np.random.Generator, column_values: np.ndarray, kind: ColumnKind
) -> float:
    """A comparison literal: usually a real data value, sometimes not."""
    roll = rng.random()
    if len(column_values) and roll < 0.6:
        anchor = column_values[int(rng.integers(len(column_values)))]
        return float(anchor)
    if len(column_values) and roll < 0.8:
        # Just outside the observed domain: boundary behaviour.
        extreme = float(column_values.max()) if rng.random() < 0.5 else float(
            column_values.min()
        )
        return extreme + float(rng.integers(-2, 3))
    if kind is ColumnKind.FLOAT and roll < 0.9:
        # Tiny magnitudes render in scientific notation — the literal
        # form that must round-trip through the SQL parser and SQLite.
        return float(rng.choice([1e-7, -1e-7, 2.5e-3, 0.0]))
    return float(rng.integers(-20, 21))


def _random_predicates(
    rng: np.random.Generator,
    database: Database,
    tables: frozenset[str],
    config: FuzzConfig,
) -> tuple[Predicate, ...]:
    candidates = [
        (name, meta)
        for name in sorted(tables)
        for meta in database.tables[name].schema.columns
        if meta.filterable and not meta.is_key
    ]
    if not candidates:
        return ()
    predicates = []
    for _ in range(int(rng.integers(0, config.max_predicates + 1))):
        table_name, meta = candidates[int(rng.integers(len(candidates)))]
        column = database.tables[table_name].column(meta.name)
        values = column.non_null_values()
        op = str(rng.choice(["=", "<", "<=", ">", ">=", "between", "in"]))
        if op == "between":
            a = _predicate_value(rng, values, meta.kind)
            b = _predicate_value(rng, values, meta.kind)
            predicates.append(
                Predicate(table_name, meta.name, "between", (min(a, b), max(a, b)))
            )
        elif op == "in":
            picks = tuple(
                sorted(
                    {
                        _predicate_value(rng, values, meta.kind)
                        for _ in range(int(rng.integers(1, 4)))
                    }
                )
            )
            predicates.append(Predicate(table_name, meta.name, "in", picks))
        else:
            predicates.append(
                Predicate(
                    table_name, meta.name, op, _predicate_value(rng, values, meta.kind)
                )
            )
    return tuple(predicates)


def _random_queries(
    rng: np.random.Generator,
    database: Database,
    seed: int,
    index: int,
    config: FuzzConfig,
) -> list[Query]:
    num_tables = len(database.tables)
    queries = []
    for q in range(int(rng.integers(1, config.max_queries_per_case + 1))):
        size = int(rng.integers(1, num_tables + 1))
        subset = _connected_subset(rng, database.join_graph, size)
        edges = tuple(
            edge
            for edge in database.join_graph.edges
            if edge.left in subset and edge.right in subset
        )
        queries.append(
            Query(
                tables=subset,
                join_edges=edges,
                predicates=_random_predicates(rng, database, subset, config),
                name=f"check-{seed}-{index}-q{q}",
            )
        )
    return queries
