"""SQLite reference oracle.

An independent re-implementation of the benchmark query class to check
the engine against: the whole :class:`~repro.engine.database.Database`
is loaded into an in-memory SQLite instance (stdlib ``sqlite3``, no
external dependency) and queries run through SQLite's own SQL engine.
Counts coming back are ground truth for the dialect — conjunctive
equi-joins with range/equality/IN filters under SQL NULL semantics
(``NULL = NULL`` never matches, predicates never select NULLs).

The oracle is deliberately *slow and simple*: correctness here is the
point, performance is the engine's job.
"""

from __future__ import annotations

import re
import sqlite3

import numpy as np

from repro.core.injection import sub_plan_sets
from repro.engine.database import Database
from repro.engine.query import Query
from repro.engine.sql import query_to_sql
from repro.engine.types import ColumnKind

_IDENTIFIER = re.compile(r"^[A-Za-z_][A-Za-z_0-9]*$")


def _checked_identifier(name: str) -> str:
    """``name`` verbatim, after asserting it is a plain identifier.

    Table and column names in the benchmark dialect are always plain
    identifiers; enforcing that here keeps the oracle's DDL assembly
    trivially injection-free.
    """
    if not _IDENTIFIER.match(name):
        raise ValueError(f"{name!r} is not a valid benchmark identifier")
    return name


class SQLiteOracle:
    """An in-memory SQLite copy of one :class:`Database`.

    Usable as a context manager::

        with SQLiteOracle(database) as oracle:
            assert oracle.count_query(query) == engine_count
    """

    def __init__(self, database: Database):
        self._database = database
        self._connection = sqlite3.connect(":memory:")
        self._load(database)

    # -- loading -----------------------------------------------------------

    def _load(self, database: Database) -> None:
        cursor = self._connection.cursor()
        for name, table in database.tables.items():
            columns = []
            for meta in table.schema.columns:
                affinity = "INTEGER" if meta.kind is ColumnKind.INT else "REAL"
                columns.append(f"{_checked_identifier(meta.name)} {affinity}")
            cursor.execute(
                f"CREATE TABLE {_checked_identifier(name)} ({', '.join(columns)})"
            )
            if table.num_rows == 0:
                continue
            column_lists = []
            for meta in table.schema.columns:
                column = table.column(meta.name)
                values = column.values.tolist()  # native Python ints/floats
                for index in np.nonzero(column.null_mask)[0]:
                    values[index] = None
                column_lists.append(values)
            placeholders = ", ".join("?" for _ in column_lists)
            cursor.executemany(
                f"INSERT INTO {name} VALUES ({placeholders})",
                list(zip(*column_lists)),
            )
        self._connection.commit()

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        self._connection.close()

    def __enter__(self) -> "SQLiteOracle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- counting ----------------------------------------------------------

    def count(self, sql: str) -> int:
        """COUNT(*) result of one benchmark-dialect SQL string."""
        row = self._connection.execute(sql).fetchone()
        return int(row[0])

    def count_query(self, query: Query) -> int:
        """COUNT(*) of a :class:`Query`, via its rendered SQL.

        Rendering through :func:`~repro.engine.sql.query_to_sql` means
        the oracle also exercises the SQL writer: a query that renders
        to SQL SQLite rejects is itself a reportable bug.
        """
        return self.count(query_to_sql(query))

    def sub_plan_counts(self, query: Query) -> dict[frozenset[str], int]:
        """Oracle count of every connected sub-plan query of ``query``."""
        return {
            subset: self.count_query(query.subquery(subset))
            for subset in sub_plan_sets(query)
        }
