"""Burn-rate SLO accounting for the serving path.

An SLO here is two budgets: an availability budget (fraction of
requests allowed to fail with 5xx) and a latency budget (fraction of
requests allowed to exceed the target p99).  The monitor keeps a
sliding window of recent request outcomes per window length and
reports **burn rates** — observed bad-fraction divided by budget — the
multi-window form SRE alerting uses: a burn rate of 1.0 means the
error budget is being consumed exactly as fast as it accrues; 10 means
ten times too fast.

The burn rates are mirrored into registry gauges
(``serve.slo.error_burn_rate.<w>s`` and
``serve.slo.latency_burn_rate.<w>s``) whenever :meth:`SLOMonitor.snapshot`
runs — which both ``/healthz`` and the ``/metrics`` scrape do — so they
ride the existing Prometheus export and the live dashboard with no
extra plumbing.  Mirroring at *read* time keeps :meth:`record`, which
runs on every served request, down to O(1) deque bookkeeping.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.obs import metrics as obs_metrics


@dataclass(frozen=True)
class SLOConfig:
    """Serving objectives: latency target and error budgets."""

    #: Requests slower than this count against the latency budget.
    target_p99_seconds: float = 0.25
    #: Allowed fraction of 5xx responses (availability budget).
    error_budget: float = 0.01
    #: Allowed fraction of requests slower than the target.  Named for
    #: p99: by default 1% of requests may exceed ``target_p99_seconds``.
    latency_budget: float = 0.01
    #: Sliding-window lengths, seconds — a fast window for paging-grade
    #: signals, a slow one for sustained burn.
    windows: tuple[int, ...] = (60, 600)


@dataclass
class _Window:
    seconds: int
    #: (monotonic_ts, is_error, is_slow) triples, pruned on record/read.
    outcomes: deque = field(default_factory=deque)
    #: Running tallies over ``outcomes`` — kept in lockstep by
    #: append/prune so reading a rate is O(1), not a deque scan (the
    #: record path runs on every served request).
    errors: int = 0
    slow: int = 0

    def append(self, now: float, is_error: bool, is_slow: bool) -> None:
        self.outcomes.append((now, is_error, is_slow))
        self.errors += is_error
        self.slow += is_slow

    def prune(self, now: float) -> None:
        horizon = now - self.seconds
        outcomes = self.outcomes
        while outcomes and outcomes[0][0] < horizon:
            _, was_error, was_slow = outcomes.popleft()
            self.errors -= was_error
            self.slow -= was_slow


class SLOMonitor:
    """Thread-safe sliding-window burn-rate tracker for one server."""

    def __init__(self, config: SLOConfig | None = None, clock=time.monotonic):
        self.config = config or SLOConfig()
        self._clock = clock
        self._lock = threading.Lock()
        self._windows = [_Window(seconds) for seconds in self.config.windows]
        self._total = 0
        self._errors = 0
        self._slow = 0

    def record(self, route: str, latency_seconds: float, status: int) -> None:
        """Fold one finished request into every window — O(1) amortised."""
        is_error = status >= 500
        is_slow = latency_seconds > self.config.target_p99_seconds
        now = self._clock()
        with self._lock:
            self._total += 1
            self._errors += is_error
            self._slow += is_slow
            for window in self._windows:
                window.append(now, is_error, is_slow)
                window.prune(now)

    @staticmethod
    def _rates(window: _Window) -> tuple[float, float]:
        total = len(window.outcomes)
        if not total:
            return 0.0, 0.0
        return window.errors / total, window.slow / total

    def snapshot(self) -> dict:
        """Window-by-window burn rates for ``/healthz`` detail.

        Also refreshes the registry burn-rate gauges, so any read path
        (healthz, the /metrics scrape) publishes current values.
        """
        now = self._clock()
        registry = obs_metrics.registry()
        with self._lock:
            windows = {}
            for window in self._windows:
                window.prune(now)
                error_rate, slow_rate = self._rates(window)
                registry.gauge(
                    f"serve.slo.error_burn_rate.{window.seconds}s"
                ).set(error_rate / self.config.error_budget)
                registry.gauge(
                    f"serve.slo.latency_burn_rate.{window.seconds}s"
                ).set(slow_rate / self.config.latency_budget)
                windows[f"{window.seconds}s"] = {
                    "requests": len(window.outcomes),
                    "error_rate": round(error_rate, 6),
                    "slow_rate": round(slow_rate, 6),
                    "error_burn_rate": round(
                        error_rate / self.config.error_budget, 4
                    ),
                    "latency_burn_rate": round(
                        slow_rate / self.config.latency_budget, 4
                    ),
                }
            return {
                "target_p99_ms": self.config.target_p99_seconds * 1000.0,
                "error_budget": self.config.error_budget,
                "latency_budget": self.config.latency_budget,
                "lifetime_requests": self._total,
                "lifetime_errors": self._errors,
                "lifetime_slow": self._slow,
                "windows": windows,
            }
