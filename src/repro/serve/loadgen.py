"""Closed-loop HTTP load generator for the estimation service.

Each client is a thread with one persistent HTTP/1.1 connection (so
the benchmark measures serving, not TCP setup), issuing its requests
back-to-back and recording per-request latency.  All clients start on
a barrier; the report aggregates QPS over the loaded interval, a
per-status-code breakdown, and p50/p95/p99 latency over every request.
Per-request :class:`RequestSample` records (status, latency and the
server's ``X-Request-ID`` echo) are kept too, so a load run doubles as
ground truth for the serving path's trace/access-log exports: every
sampled request id can be resolved against the exported artifacts.

This is the harness behind ``benchmarks/bench_serve.py`` — the
production-shaped metric (QPS, tail latency at 1/8/64 clients) every
future performance PR can move — but it is deliberately dependency-free
so tests can point it at any :class:`~repro.obs.httpd.RoutedHTTPServer`.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from dataclasses import dataclass, field


@dataclass(frozen=True)
class RequestSample:
    """One request as the client saw it (trace-resolution ground truth)."""

    status: int
    latency_seconds: float
    request_id: str

    def as_dict(self) -> dict:
        return {
            "status": self.status,
            "latency_ms": round(self.latency_seconds * 1000.0, 4),
            "request_id": self.request_id,
        }


@dataclass
class LoadReport:
    """Aggregated result of one load run."""

    clients: int
    requests: int
    failures: int
    seconds: float
    qps: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    status_counts: dict[int, int] = field(default_factory=dict)
    errors: list[str] = field(default_factory=list)
    samples: list[RequestSample] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "clients": self.clients,
            "requests": self.requests,
            "failures": self.failures,
            "seconds": self.seconds,
            "qps": self.qps,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "status_counts": {
                str(status): count
                for status, count in sorted(self.status_counts.items())
            },
            "errors": self.errors[:5],
            "samples": [sample.as_dict() for sample in self.samples],
        }


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


class _Client(threading.Thread):
    def __init__(self, address, path, payloads, requests, offset, barrier, timeout):
        super().__init__(name=f"loadgen-{offset}", daemon=True)
        self.address = address
        self.path = path
        self.payloads = payloads
        self.requests = requests
        self.offset = offset
        self.barrier = barrier
        self.timeout = timeout
        self.latencies: list[float] = []
        self.statuses: list[int] = []
        self.errors: list[str] = []
        self.samples: list[RequestSample] = []

    def run(self) -> None:
        host, port = self.address
        connection = http.client.HTTPConnection(host, port, timeout=self.timeout)
        try:
            self.barrier.wait(timeout=30.0)
            for index in range(self.requests):
                payload = self.payloads[(self.offset + index) % len(self.payloads)]
                body = json.dumps(payload)
                request_id = ""
                started = time.perf_counter()
                try:
                    connection.request(
                        "POST",
                        self.path,
                        body=body,
                        headers={"Content-Type": "application/json"},
                    )
                    response = connection.getresponse()
                    response.read()  # drain so the connection can be reused
                    request_id = response.getheader("X-Request-ID") or ""
                    status = response.status
                except Exception as error:
                    self.errors.append(f"{type(error).__name__}: {error}")
                    status = -1
                    connection.close()
                    connection = http.client.HTTPConnection(
                        host, port, timeout=self.timeout
                    )
                latency = time.perf_counter() - started
                self.statuses.append(status)
                self.latencies.append(latency)
                self.samples.append(RequestSample(status, latency, request_id))
        finally:
            connection.close()


def run_load(
    address: tuple[str, int],
    payloads: list[dict],
    path: str = "/estimate",
    clients: int = 8,
    requests_per_client: int = 25,
    timeout: float = 60.0,
) -> LoadReport:
    """Drive ``clients`` concurrent closed-loop clients; aggregate."""
    barrier = threading.Barrier(clients + 1)
    workers = [
        _Client(
            address,
            path,
            payloads,
            requests_per_client,
            offset=index * 7,  # decorrelate which payloads each client sends
            barrier=barrier,
            timeout=timeout,
        )
        for index in range(clients)
    ]
    for worker in workers:
        worker.start()
    barrier.wait(timeout=30.0)
    started = time.perf_counter()
    for worker in workers:
        worker.join()
    elapsed = time.perf_counter() - started

    latencies = sorted(
        latency for worker in workers for latency in worker.latencies
    )
    statuses = [status for worker in workers for status in worker.statuses]
    status_counts: dict[int, int] = {}
    for status in statuses:
        status_counts[status] = status_counts.get(status, 0) + 1
    failures = sum(1 for status in statuses if status != 200)
    total = len(statuses)
    return LoadReport(
        clients=clients,
        requests=total,
        failures=failures,
        seconds=elapsed,
        qps=total / elapsed if elapsed > 0 else 0.0,
        p50_ms=_percentile(latencies, 0.50) * 1000.0,
        p95_ms=_percentile(latencies, 0.95) * 1000.0,
        p99_ms=_percentile(latencies, 0.99) * 1000.0,
        status_counts=status_counts,
        errors=[error for worker in workers for error in worker.errors],
        samples=[sample for worker in workers for sample in worker.samples],
    )
