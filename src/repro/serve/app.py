"""The HTTP surface of the estimation service.

Routes (all JSON bodies/responses):

- ``POST /estimate``        — ``{"sql": "...", "model": "name"?}`` ->
  one estimate (micro-batched across clients when batching is on);
- ``POST /estimate_batch``  — ``{"sql": ["...", ...], "model": ...}``;
- ``POST /subplans``        — the whole connected-sub-plan space of
  one query, priced through the batched injection path;
- ``POST /feedback``        — actual cardinalities for a served
  request (``{"request_id": ..., "actuals": [...]}``) or a standalone
  pair, folded into the accuracy-drift monitor;
- ``POST /admin/promote``   — ``{"estimator": "LW-XGB"}`` (train) or
  ``{"path": "model.pkl"}`` (load), then atomic hot-swap;
- ``POST /admin/shutdown``  — ask the serving process to exit cleanly;
- ``GET /models`` ``/healthz`` ``/metrics`` (Prometheus text, the
  whole obs registry — request counters, latency histograms with
  ``_bucket`` series, SLO burn rates, drift gauges — plus any active
  campaign tracker).

Status mapping: 400 malformed request, 404 unknown model/route, 405
wrong method, 429 admission control, 504 request deadline, 500
anything else (still JSON).  Every route is instrumented into the
:mod:`repro.obs.metrics` registry: ``serve.requests.<route>``,
``serve.errors.<route>`` and ``serve.latency_seconds.<route>``.

Every response carries ``X-Request-ID`` (adopted from the client or
minted in :mod:`repro.obs.httpd`).  When a
:class:`~repro.serve.service.ServeObservability` bundle is attached,
the instrumented wrapper additionally gives each request its own
trace (trace id == request id) exported to the shared sink, appends
one access-log line, and folds the outcome into the SLO monitor —
whatever the status, including error paths.
"""

from __future__ import annotations

import time

from repro.obs import metrics as obs_metrics
from repro.obs.httpd import (
    PROMETHEUS_CONTENT_TYPE,
    HTTPError,
    Request,
    Response,
    RoutedHTTPServer,
    json_response,
    text_response,
)
from repro.obs.progress import active_tracker, prometheus_text
from repro.obs.trace import Tracer
from repro.serve import tracing as request_tracing
from repro.serve.batching import AdmissionError, BatcherClosedError
from repro.serve.registry import UnknownModelError
from repro.serve.service import BadRequestError, EstimationService

#: service exception -> HTTP status.
_STATUS_OF = (
    (BadRequestError, 400),
    (UnknownModelError, 404),
    (AdmissionError, 429),
    (BatcherClosedError, 503),
    (TimeoutError, 504),
)


def _status_of(error: Exception) -> int:
    for exc_type, status in _STATUS_OF:
        if isinstance(error, exc_type):
            return status
    return 500


def _instrumented(route_name: str, fn, service: EstimationService):
    """Wrap a route with metrics, status mapping, tracing and logging."""
    obs = service.obs

    def route(request: Request) -> Response:
        registry = obs_metrics.registry()
        registry.counter(f"serve.requests.{route_name}").inc()
        started = time.perf_counter()
        tracer = (
            Tracer(trace_id=request.request_id)
            if obs.trace_sink is not None
            else None
        )
        status = 200
        try:
            with request_tracing.use_tracer(tracer):
                if tracer is None:
                    response = fn(request)
                else:
                    with tracer.span(
                        "request",
                        route=route_name,
                        method=request.method,
                        request_id=request.request_id,
                    ) as root:
                        response = fn(request)
                        root.set(status=response.status)
            status = response.status
            return response
        except HTTPError as error:
            status = error.status
            registry.counter(f"serve.errors.{route_name}").inc()
            raise
        except Exception as error:
            registry.counter(f"serve.errors.{route_name}").inc()
            status = _status_of(error)
            if status != 500:
                raise HTTPError(status, str(error)) from error
            raise
        finally:
            elapsed = time.perf_counter() - started
            registry.histogram(f"serve.latency_seconds.{route_name}").observe(
                elapsed
            )
            if tracer is not None:
                obs.trace_sink.write_spans(tracer.spans)
            if obs.access_log is not None:
                obs.access_log.record(
                    request_id=request.request_id,
                    route=route_name,
                    method=request.method,
                    status=status,
                    latency_seconds=elapsed,
                )
            if obs.slo is not None:
                obs.slo.record(route_name, elapsed, status)

    return route


def _sql_list(payload: dict) -> list:
    sqls = payload.get("sql")
    if isinstance(sqls, str):
        return [sqls]
    if isinstance(sqls, list) and sqls:
        return sqls
    raise HTTPError(400, "'sql' must be a non-empty string or list of strings")


def build_server(
    service: EstimationService, addr: str, flag: str = "--serve-addr"
) -> RoutedHTTPServer:
    """Bind (not start) a routed HTTP server around ``service``."""
    server = RoutedHTTPServer(addr, flag=flag, thread_name="repro-serve")

    def estimate(request: Request) -> Response:
        payload = request.json()
        result = service.estimate_many(
            _sql_list(payload),
            model=payload.get("model"),
            request_id=request.request_id,
        )
        if isinstance(payload.get("sql"), str):
            result["estimate"] = result["estimates"][0]
        return json_response(result)

    def sub_plans(request: Request) -> Response:
        payload = request.json()
        sql = payload.get("sql")
        if not isinstance(sql, str):
            raise HTTPError(400, "'sql' must be a string")
        return json_response(
            service.sub_plans(
                sql, model=payload.get("model"), request_id=request.request_id
            )
        )

    def feedback(request: Request) -> Response:
        return json_response(service.feedback(request.json()))

    def promote(request: Request) -> Response:
        payload = request.json()
        return json_response(
            service.promote(
                name=payload.get("name"),
                estimator_name=payload.get("estimator"),
                path=payload.get("path"),
            )
        )

    def shutdown(request: Request) -> Response:
        service.shutdown_requested.set()
        return json_response({"status": "shutting down"})

    def models(request: Request) -> Response:
        return json_response(service.registry.describe())

    def healthz(request: Request) -> Response:
        return json_response(service.healthz())

    def metrics(request: Request) -> Response:
        if service.obs.slo is not None:
            service.obs.slo.snapshot()  # refresh burn-rate gauges at scrape
        return text_response(
            prometheus_text(tracker=active_tracker()),
            content_type=PROMETHEUS_CONTENT_TYPE,
        )

    server.add_route(
        "POST", "/estimate", _instrumented("estimate", estimate, service)
    )
    server.add_route(
        "POST",
        "/estimate_batch",
        _instrumented("estimate_batch", estimate, service),
    )
    server.add_route(
        "POST", "/subplans", _instrumented("subplans", sub_plans, service)
    )
    server.add_route(
        "POST", "/feedback", _instrumented("feedback", feedback, service)
    )
    server.add_route(
        "POST", "/admin/promote", _instrumented("promote", promote, service)
    )
    server.add_route("POST", "/admin/shutdown", shutdown)
    server.add_route("GET", "/models", models)
    server.add_route("GET", "/healthz", healthz)
    server.add_route("GET", "/", metrics)
    server.add_route("GET", "/metrics", metrics)
    return server
