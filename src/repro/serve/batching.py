"""Cross-client micro-batching with admission control.

The estimation hot path is batched (`estimate_batch` prices a whole
list of queries in one vectorised pass), but HTTP clients arrive one
request at a time.  The :class:`MicroBatcher` closes that gap: handler
threads enqueue their queries on a **bounded** queue (overflow is an
:class:`AdmissionError` — the app layer's 429) and block on a
per-request event; a single collector thread drains the queue, waits
up to ``window_seconds`` for stragglers, groups the drained jobs by
model name and prices each group with **one** ``estimate_batch``
call, then distributes the slices back to the waiting handlers.

Under load the window barely matters: while one batch is being priced
the next requests pile up, so batches form naturally.  At low
concurrency the window *is* the cost of micro-batching — up to
``window_seconds`` of added latency per request — which is exactly the
trade-off ``benchmarks/bench_serve.py`` measures at 1/8/64 clients.

When a :class:`~repro.serve.tracing.TraceSink` is attached, each
drained group gets its own trace: a ``batch`` span whose ``links``
attribute names the ``queue_wait`` span of every member request, plus
a backdated ``batch_assembly`` span for the collection window and the
service's ``inference`` span nested under it (the collector installs
the batch tracer thread-locally around ``run_batch``).  The member
requests' :class:`~repro.serve.tracing.TraceLink` handles are filled
with the batch span id before their events fire, so each request trace
can point back at the batch that served it.
"""

from __future__ import annotations

import queue
import threading
import time

from repro.obs import metrics as obs_metrics
from repro.obs.trace import Tracer
from repro.serve.tracing import TraceLink, TraceSink, use_tracer


class AdmissionError(RuntimeError):
    """The bounded request queue is full (the HTTP layer's 429)."""


class BatcherClosedError(RuntimeError):
    """The batcher is shutting down; the request was not served."""


class _Job:
    """One submitted request: queries in, values (or an error) out."""

    __slots__ = ("model", "queries", "event", "values", "error", "version", "link")

    def __init__(
        self, model: str | None, queries: list, link: TraceLink | None = None
    ):
        self.model = model
        self.queries = queries
        self.event = threading.Event()
        self.values: list[float] | None = None
        self.error: BaseException | None = None
        self.version: int | None = None
        self.link = link

    def resolve(self, values: list[float], version: int | None) -> None:
        self.values = values
        self.version = version
        self.event.set()

    def fail(self, error: BaseException) -> None:
        self.error = error
        self.event.set()


class MicroBatcher:
    """A collector thread turning concurrent requests into one batch call.

    ``run_batch(model_name, queries) -> (values, version)`` is the
    execution hook — the service resolves the model name at *drain*
    time, so a promotion applies atomically to every queued request.
    """

    def __init__(
        self,
        run_batch,
        max_queue: int = 256,
        window_seconds: float = 0.001,
        max_batch: int = 1024,
        trace_sink: TraceSink | None = None,
    ):
        self._run_batch = run_batch
        self._trace_sink = trace_sink
        self.window_seconds = window_seconds
        self.max_batch = max_batch
        self.max_queue = max_queue
        self._queue: queue.Queue[_Job | None] = queue.Queue(maxsize=max_queue)
        self._closed = False
        self._thread = threading.Thread(
            target=self._collect, name="repro-serve-batcher", daemon=True
        )

    def start(self) -> "MicroBatcher":
        self._thread.start()
        return self

    @property
    def depth(self) -> int:
        """Approximate queued jobs (the /healthz ``queue_depth`` gauge)."""
        return self._queue.qsize()

    def submit(
        self,
        model: str | None,
        queries: list,
        timeout_seconds: float | None = 30.0,
        link: TraceLink | None = None,
    ) -> tuple[list[float], int | None]:
        """Enqueue ``queries`` and wait for the batched result.

        Raises :class:`AdmissionError` when the queue is full (callers
        map it to 429), :class:`BatcherClosedError` on shutdown, and
        re-raises whatever the estimator raised for this job's group.
        A ``link`` rides along to the collector, which fills in the
        batch span id that served this job before the event fires.
        """
        if self._closed:
            raise BatcherClosedError("estimation service is shutting down")
        job = _Job(model, list(queries), link=link)
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            obs_metrics.registry().counter("serve.admission_rejected").inc()
            raise AdmissionError(
                f"request queue full ({self.max_queue} pending)"
            ) from None
        if not job.event.wait(timeout_seconds):
            raise TimeoutError(
                f"batched estimate not served within {timeout_seconds}s"
            )
        if job.error is not None:
            raise job.error
        return job.values or [], job.version

    # -- collector ---------------------------------------------------------

    def _collect(self) -> None:
        while True:
            try:
                first = self._queue.get(timeout=0.1)
            except queue.Empty:
                if self._closed:
                    return
                continue
            if first is None:  # shutdown sentinel
                self._drain_on_close()
                return
            assembly_started = time.perf_counter()
            jobs = [first]
            size = len(first.queries)
            deadline = time.monotonic() + self.window_seconds
            while size < self.max_batch:
                remaining = deadline - time.monotonic()
                try:
                    job = (
                        self._queue.get_nowait()
                        if remaining <= 0
                        else self._queue.get(timeout=remaining)
                    )
                except queue.Empty:
                    break
                if job is None:
                    self._execute(jobs, time.perf_counter() - assembly_started)
                    self._drain_on_close()
                    return
                jobs.append(job)
                size += len(job.queries)
            self._execute(jobs, time.perf_counter() - assembly_started)

    def _execute(self, jobs: list[_Job], assembly_seconds: float = 0.0) -> None:
        registry = obs_metrics.registry()
        groups: dict[str | None, list[_Job]] = {}
        for job in jobs:
            groups.setdefault(job.model, []).append(job)
        for model, group in groups.items():
            queries = [query for job in group for query in job.queries]
            tracer = batch_span = None
            if self._trace_sink is not None and any(
                job.link is not None for job in group
            ):
                tracer = Tracer()
            try:
                if tracer is not None:
                    # The batch tracer becomes THIS thread's tracer so the
                    # service's inference span nests under the batch span.
                    with use_tracer(tracer), tracer.span(
                        "batch",
                        model=model or "",
                        jobs=len(group),
                        batch_size=len(queries),
                        links=[
                            job.link.span_id
                            for job in group
                            if job.link is not None
                        ],
                    ) as batch_span:
                        tracer.record("batch_assembly", assembly_seconds)
                        values, version = self._run_batch(model, queries)
                        batch_span.set(version=version)
                else:
                    values, version = self._run_batch(model, queries)
                if len(values) != len(queries):
                    raise RuntimeError(
                        f"batch returned {len(values)} values "
                        f"for {len(queries)} queries"
                    )
            except BaseException as error:  # noqa: BLE001 — handed to waiters
                for job in group:
                    job.fail(error)
                if tracer is not None:
                    self._trace_sink.write_spans(tracer.spans)
                continue
            registry.histogram("serve.batch_size").observe(float(len(queries)))
            registry.counter("serve.batches").inc()
            if batch_span is not None:
                # Links must be complete before any waiter's event fires.
                for job in group:
                    if job.link is not None:
                        job.link.batch_span_id = batch_span.span_id
                        job.link.version = version
                self._trace_sink.write_spans(tracer.spans)
            offset = 0
            for job in group:
                job.resolve(values[offset : offset + len(job.queries)], version)
                offset += len(job.queries)

    def _drain_on_close(self) -> None:
        while True:
            try:
                job = self._queue.get_nowait()
            except queue.Empty:
                return
            if job is not None:
                job.fail(BatcherClosedError("estimation service shut down"))

    def close(self, timeout: float = 5.0) -> bool:
        """Stop the collector; idempotent.  Pending jobs are failed with
        :class:`BatcherClosedError`, never silently dropped."""
        already_closed = self._closed
        self._closed = True
        if self._thread.ident is None:  # never started
            self._drain_on_close()
            return True
        if not already_closed:
            try:
                self._queue.put_nowait(None)  # wake the collector now
            except queue.Full:
                pass  # collector is draining; the timeout poll exits it
        self._thread.join(timeout=timeout)
        self._drain_on_close()
        return not self._thread.is_alive()
