"""Request-scoped tracing and the structured access log for serving.

The campaign tracer (:mod:`repro.obs.trace`) is process-global — one
benchmark run, one span tree.  A serving process handles many requests
concurrently, so request tracing here is **thread-local**: every HTTP
request gets its own :class:`~repro.obs.trace.Tracer` whose trace id
*is* the request id (minted or adopted from ``X-Request-ID``), and the
handler thread installs it for the duration of the request.  Spans
cross the micro-batcher's queue boundary by **links**: the request's
``queue_wait`` span hands a :class:`TraceLink` to the batcher, and the
collector thread's ``batch`` span records every member link (and hands
its own span id back), so one drained batch is navigable from each of
the client requests it coalesced — and vice versa.

Durability follows the event-log rules: spans are appended to one
JSONL file (:class:`TraceSink`, one whole-trace write + flush per
request, thread-safe), so a killed server leaves every finished
request's trace readable; :func:`repro.obs.trace.load_trace` skips a
torn tail.  The :class:`AccessLog` is the same shape for request
outcomes: one flushed JSON line per served request.

Export is **asynchronous**: serialization and the write+flush
syscalls run on a per-file daemon writer thread, so the request
critical path only pays a queue put (the same batching-exporter shape
OpenTelemetry uses).  ``flush()`` blocks until everything enqueued so
far is on disk — tests and scrapers that read the files of a *live*
server call it first; ``close()`` drains before closing, so shutdown
loses nothing.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from contextlib import contextmanager, nullcontext
from pathlib import Path

from repro.obs.trace import Span, Tracer

_LOCAL = threading.local()


def current_tracer() -> Tracer | None:
    """The tracer installed on *this* thread, or None when untraced."""
    return getattr(_LOCAL, "tracer", None)


@contextmanager
def use_tracer(tracer: Tracer | None):
    """Install ``tracer`` thread-locally for the enclosed block.

    ``None`` is allowed and leaves tracing off — call sites wrap
    unconditionally and stay branch-free.
    """
    previous = getattr(_LOCAL, "tracer", None)
    _LOCAL.tracer = tracer
    try:
        yield tracer
    finally:
        _LOCAL.tracer = previous


def span(name: str, /, **attributes):
    """A span on this thread's tracer; shared no-op when untraced."""
    tracer = getattr(_LOCAL, "tracer", None)
    if tracer is None:
        return nullcontext(_NULL_SPAN)
    return tracer.span(name, **attributes)


class _NullSpan:
    __slots__ = ()

    def set(self, **attributes) -> None:
        pass


_NULL_SPAN = _NullSpan()


class TraceLink:
    """Mutable cross-thread handle tying a request span to its batch.

    The submitting handler thread fills ``trace_id``/``span_id`` (its
    ``queue_wait`` span); the collector thread fills ``batch_span_id``
    and ``version`` when it resolves the job, so both sides can record
    the other's identity without sharing a tracer.
    """

    __slots__ = ("trace_id", "span_id", "batch_span_id", "version")

    def __init__(self, trace_id: str, span_id: str):
        self.trace_id = trace_id
        self.span_id = span_id
        self.batch_span_id: str | None = None
        self.version: int | None = None


class _JsonlWriter:
    """Polling daemon-thread JSONL appender behind TraceSink and AccessLog.

    ``submit`` appends a list of dicts to a deque and returns — about a
    microsecond on the request critical path.  The writer thread wakes
    on a short poll tick (not per submit: a condition-variable wakeup
    per request costs two orders of magnitude more in GIL/scheduler
    ping-pong than the append) and drains everything pending into
    contiguous writes plus one flush, so concurrent producers never
    interleave half-traces and a kill leaves at most one torn line.
    """

    #: Export lag ceiling; readers of a live file see records at most
    #: one tick late (or immediately after ``flush()``).
    poll_seconds = 0.02

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("a", encoding="utf-8")
        self._pending: deque = deque()
        self._io_lock = threading.Lock()
        self._stop = threading.Event()
        self._closed = False
        self._thread = threading.Thread(
            target=self._run, name=f"jsonl-writer:{self.path.name}", daemon=True
        )
        self._thread.start()

    def submit(self, records: list[dict]) -> bool:
        if self._closed:
            return False
        self._pending.append(records)
        return True

    def _run(self) -> None:
        while not self._stop.wait(self.poll_seconds):
            self._drain()
        self._drain()

    def _drain(self) -> None:
        with self._io_lock:
            wrote = False
            while True:
                try:
                    records = self._pending.popleft()
                except IndexError:
                    break
                try:
                    self._handle.write(
                        "".join(
                            json.dumps(record, default=str) + "\n"
                            for record in records
                        )
                    )
                    wrote = True
                except Exception:
                    pass  # a poison record must not kill the writer
            if wrote:
                self._handle.flush()

    def flush(self, timeout: float = 10.0) -> None:
        """Block until everything submitted before the call is on disk."""
        deadline = time.monotonic() + timeout
        while self._pending and time.monotonic() < deadline:
            if self._closed or not self._thread.is_alive():
                break
            time.sleep(0.002)
        self._drain()  # belt and braces: also covers a closed writer

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        self._thread.join(timeout=10.0)
        self._drain()  # submits that raced the close flag
        with self._io_lock:
            self._handle.close()


class TraceSink:
    """Thread-safe append-only JSONL span writer for one serving process.

    One ``write_spans`` call enqueues a whole trace (or batch-group)
    for the writer thread, which appends it as one buffered write plus
    one flush.  ``spans_written`` counts accepted spans at enqueue
    time; call :meth:`flush` before reading the file of a live server.
    """

    def __init__(self, path: str | Path):
        self._writer = _JsonlWriter(path)
        self._lock = threading.Lock()
        self._spans_written = 0

    @property
    def path(self) -> Path:
        return self._writer.path

    @property
    def spans_written(self) -> int:
        return self._spans_written

    def write_spans(self, spans: list[Span] | list[dict]) -> None:
        if not spans:
            return
        records = [
            span if isinstance(span, dict) else span.to_dict() for span in spans
        ]
        if self._writer.submit(records):
            with self._lock:
                self._spans_written += len(records)

    def flush(self) -> None:
        self._writer.flush()

    def close(self) -> None:
        self._writer.close()


class AccessLog:
    """Append-only JSONL access log: one flushed line per request.

    Timestamps are taken on the recording thread; serialization and
    disk I/O ride the writer thread.  ``count`` is the number of
    accepted records at enqueue time; call :meth:`flush` before
    reading the file of a live server.
    """

    def __init__(self, path: str | Path, clock=time.time):
        self._writer = _JsonlWriter(path)
        self._lock = threading.Lock()
        self._clock = clock
        self._count = 0

    @property
    def path(self) -> Path:
        return self._writer.path

    @property
    def count(self) -> int:
        return self._count

    def record(
        self,
        *,
        request_id: str,
        route: str,
        method: str,
        status: int,
        latency_seconds: float,
        **fields,
    ) -> None:
        record = {
            "ts": self._clock(),
            "request_id": request_id,
            "route": route,
            "method": method,
            "status": int(status),
            "latency_ms": round(latency_seconds * 1000.0, 4),
        }
        record.update(fields)
        if self._writer.submit([record]):
            with self._lock:
                self._count += 1

    def flush(self) -> None:
        self._writer.flush()

    def close(self) -> None:
        self._writer.close()


def load_access_log(path: str | Path) -> list[dict]:
    """Read an access log back, skipping blank and torn-tail lines."""
    records: list[dict] = []
    log_path = Path(path)
    if not log_path.exists():
        return records
    with log_path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                continue  # torn tail from a killed process
    return records
