"""Accuracy-drift monitoring: does the served model still estimate well?

A serving process only ever sees its own estimates; accuracy requires
ground truth, which arrives two ways — clients posting actual
cardinalities to ``POST /feedback`` after executing their queries, or
the service sampling its own traffic and executing every Nth query
against the local database.  Either way the pair lands here.

The monitor windows q-errors per ``(model, version, join template)``
key — the same template axis the workload-shift benchmark uses — so a
drifting *slice* of traffic (one join shape going stale after an
append-heavy day) is visible even when the aggregate looks fine.  A
window whose median q-error crosses the threshold (with enough
samples to mean anything) raises a ``serve.drift`` event exactly once
per degradation episode and keeps a registry gauge of currently
degraded windows; recovery clears it.

Every pair is also appended (flushed, torn-tail-tolerant) to a JSONL
file in the shape :mod:`repro.obs.blame` records per-node — ``tables``
/ ``estimated_rows`` / ``true_rows`` / ``ratio`` / ``direction`` —
so post-hoc blame tooling can consume a serving day's feedback the way
it consumes a benchmark run.
"""

from __future__ import annotations

import json
import statistics
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.metrics import q_error
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics


@dataclass(frozen=True)
class DriftConfig:
    """Windowing and alerting knobs for the drift monitor."""

    #: Sliding window of q-errors kept per (model, version, template).
    window: int = 32
    #: Windows with fewer samples than this never alert.
    min_count: int = 8
    #: Median q-error above this marks the window degraded.
    threshold: float = 4.0


def _ratio(estimated: float, true: float) -> tuple[float, str]:
    estimated = max(float(estimated), 1.0)
    true = max(float(true), 1.0)
    if estimated == true:
        return 1.0, "exact"
    if estimated < true:
        return true / estimated, "under"
    return estimated / true, "over"


@dataclass
class _DriftWindow:
    q_errors: deque
    degraded: bool = False
    pairs: int = 0
    last_q_error: float = 0.0

    def median(self) -> float:
        return statistics.median(self.q_errors) if self.q_errors else 0.0


@dataclass
class DriftEvent:
    """One degradation episode: a window crossing the threshold."""

    model: str
    version: int
    template: tuple[str, ...]
    median_q_error: float
    window_size: int
    unix_time: float = field(default_factory=time.time)

    def to_dict(self) -> dict:
        return {
            "model": self.model,
            "version": self.version,
            "template": list(self.template),
            "median_q_error": round(self.median_q_error, 4),
            "window_size": self.window_size,
            "unix_time": self.unix_time,
        }


class DriftMonitor:
    """Thread-safe windowed q-error tracker with blame-shaped persistence."""

    def __init__(
        self,
        config: DriftConfig | None = None,
        pairs_path: str | Path | None = None,
    ):
        self.config = config or DriftConfig()
        self._lock = threading.Lock()
        self._windows: dict[tuple, _DriftWindow] = {}
        self._events: list[DriftEvent] = []
        self._handle = None
        self.pairs_path: Path | None = None
        if pairs_path is not None:
            self.pairs_path = Path(pairs_path)
            self.pairs_path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.pairs_path.open("a", encoding="utf-8")

    # -- recording ---------------------------------------------------------

    def observe(
        self,
        *,
        model: str,
        version: int,
        template: tuple[str, ...],
        estimate: float,
        actual: float,
        estimator: str = "",
        request_id: str = "",
        source: str = "feedback",
        sql: str = "",
    ) -> dict:
        """Fold one est-vs-actual pair in; returns the pair record."""
        error = q_error(estimate, actual)
        ratio, direction = _ratio(estimate, actual)
        record = {
            "ts": time.time(),
            "model": model,
            "version": int(version),
            "estimator": estimator,
            "tables": list(template),
            "estimated_rows": float(estimate),
            "true_rows": float(actual),
            "ratio": ratio,
            "direction": direction,
            "q_error": error,
            "request_id": request_id,
            "source": source,
            "sql": sql,
        }
        key = (model, int(version), tuple(template))
        registry = obs_metrics.registry()
        fired: DriftEvent | None = None
        with self._lock:
            window = self._windows.get(key)
            if window is None:
                window = self._windows[key] = _DriftWindow(
                    q_errors=deque(maxlen=self.config.window)
                )
            window.q_errors.append(error)
            window.pairs += 1
            window.last_q_error = error
            median = window.median()
            enough = len(window.q_errors) >= self.config.min_count
            if enough and median > self.config.threshold:
                if not window.degraded:
                    window.degraded = True
                    fired = DriftEvent(
                        model=model,
                        version=int(version),
                        template=tuple(template),
                        median_q_error=median,
                        window_size=len(window.q_errors),
                    )
                    self._events.append(fired)
            elif enough and window.degraded:
                window.degraded = False
            degraded_now = sum(w.degraded for w in self._windows.values())
            if self._handle is not None:
                self._handle.write(json.dumps(record) + "\n")
                self._handle.flush()
        registry.gauge("serve.drift.degraded_windows").set(degraded_now)
        registry.histogram("serve.drift.q_error").observe(error)
        if fired is not None:
            registry.counter("serve.drift.events").inc()
            obs_events.emit(
                "serve.drift",
                level="warning",
                model=fired.model,
                version=fired.version,
                template=",".join(fired.template),
                median_q_error=round(fired.median_q_error, 4),
                window_size=fired.window_size,
            )
        return record

    # -- reading -----------------------------------------------------------

    def events(self) -> list[dict]:
        with self._lock:
            return [event.to_dict() for event in self._events]

    def snapshot(self) -> dict:
        """Per-window state for ``/healthz`` detail and the dashboard."""
        with self._lock:
            windows = []
            for (model, version, template), window in sorted(
                self._windows.items(), key=lambda item: item[0]
            ):
                windows.append(
                    {
                        "model": model,
                        "version": version,
                        "template": list(template),
                        "pairs": window.pairs,
                        "window_size": len(window.q_errors),
                        "median_q_error": round(window.median(), 4),
                        "last_q_error": round(window.last_q_error, 4),
                        "degraded": window.degraded,
                    }
                )
            return {
                "threshold": self.config.threshold,
                "min_count": self.config.min_count,
                "window": self.config.window,
                "events": len(self._events),
                "degraded_windows": sum(
                    1 for entry in windows if entry["degraded"]
                ),
                "windows": windows,
            }

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


def load_drift_pairs(path: str | Path) -> list[dict]:
    """Read persisted est-vs-actual pairs, skipping a torn tail."""
    pairs: list[dict] = []
    pairs_path = Path(path)
    if not pairs_path.exists():
        return pairs
    with pairs_path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                pairs.append(json.loads(line))
            except json.JSONDecodeError:
                continue  # torn tail from a killed process
    return pairs
