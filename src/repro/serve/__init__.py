"""Estimation-as-a-service: a concurrent serving layer.

The paper evaluates CardEst methods as offline artifacts; this package
is the deployment shape its end-to-end claim actually lives in — a
long-lived process answering estimation requests over HTTP:

- :mod:`repro.serve.registry` — named estimator versions with atomic
  hot-swap (train offline, promote under a lock);
- :mod:`repro.serve.batching` — cross-client micro-batching: a
  collector thread drains a bounded request queue into one
  ``estimate_batch`` call, with admission control (429 on overflow);
- :mod:`repro.serve.service` — the transport-free service core:
  parse-cached SQL, per-request retry/timeout/fallback via the
  :mod:`repro.resilience` policies, sub-plan-space pricing through the
  batched :mod:`repro.core.injection` path;
- :mod:`repro.serve.app` — the HTTP surface (``POST /estimate``,
  ``/estimate_batch``, ``/subplans``, ``/admin/promote``, plus
  ``/metrics`` and ``/healthz``) on the shared
  :mod:`repro.obs.httpd` machinery;
- :mod:`repro.serve.loadgen` — the closed-loop load generator behind
  ``benchmarks/bench_serve.py`` (QPS, p50/p99 at 1/8/64 clients).
"""

from repro.serve.app import build_server
from repro.serve.batching import AdmissionError, MicroBatcher
from repro.serve.loadgen import LoadReport, run_load
from repro.serve.registry import ModelRegistry, ModelVersion, UnknownModelError
from repro.serve.service import BadRequestError, EstimationService, ServiceError

__all__ = [
    "AdmissionError",
    "BadRequestError",
    "EstimationService",
    "LoadReport",
    "MicroBatcher",
    "ModelRegistry",
    "ModelVersion",
    "ServiceError",
    "UnknownModelError",
    "build_server",
    "run_load",
]
