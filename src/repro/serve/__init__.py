"""Estimation-as-a-service: a concurrent serving layer.

The paper evaluates CardEst methods as offline artifacts; this package
is the deployment shape its end-to-end claim actually lives in — a
long-lived process answering estimation requests over HTTP:

- :mod:`repro.serve.registry` — named estimator versions with atomic
  hot-swap (train offline, promote under a lock);
- :mod:`repro.serve.batching` — cross-client micro-batching: a
  collector thread drains a bounded request queue into one
  ``estimate_batch`` call, with admission control (429 on overflow);
- :mod:`repro.serve.service` — the transport-free service core:
  parse-cached SQL, per-request retry/timeout/fallback via the
  :mod:`repro.resilience` policies, sub-plan-space pricing through the
  batched :mod:`repro.core.injection` path;
- :mod:`repro.serve.app` — the HTTP surface (``POST /estimate``,
  ``/estimate_batch``, ``/subplans``, ``/admin/promote``, plus
  ``/metrics`` and ``/healthz``) on the shared
  :mod:`repro.obs.httpd` machinery;
- :mod:`repro.serve.loadgen` — the closed-loop load generator behind
  ``benchmarks/bench_serve.py`` (QPS, p50/p99 at 1/8/64 clients);
- :mod:`repro.serve.tracing` — request-scoped (thread-local) tracing,
  the append-only span sink and the structured access log;
- :mod:`repro.serve.slo` — sliding-window burn-rate SLO accounting;
- :mod:`repro.serve.drift` — windowed est-vs-actual q-error
  monitoring fed by ``POST /feedback`` or self-execution sampling.
"""

from repro.serve.app import build_server
from repro.serve.batching import AdmissionError, MicroBatcher
from repro.serve.drift import DriftConfig, DriftMonitor, load_drift_pairs
from repro.serve.loadgen import LoadReport, RequestSample, run_load
from repro.serve.registry import ModelRegistry, ModelVersion, UnknownModelError
from repro.serve.service import (
    BadRequestError,
    EstimationService,
    ServeObservability,
    ServiceError,
)
from repro.serve.slo import SLOConfig, SLOMonitor
from repro.serve.tracing import AccessLog, TraceLink, TraceSink, load_access_log

__all__ = [
    "AccessLog",
    "AdmissionError",
    "BadRequestError",
    "DriftConfig",
    "DriftMonitor",
    "EstimationService",
    "LoadReport",
    "MicroBatcher",
    "ModelRegistry",
    "ModelVersion",
    "RequestSample",
    "SLOConfig",
    "SLOMonitor",
    "ServeObservability",
    "ServiceError",
    "TraceLink",
    "TraceSink",
    "UnknownModelError",
    "build_server",
    "load_access_log",
    "load_drift_pairs",
    "run_load",
]
