"""Named estimator versions with atomic hot-swap.

A serving process must be able to replace a model without dropping
requests: training happens *offline* (outside any lock), and only the
pointer swap — :meth:`ModelRegistry.promote` — runs under the
registry lock.  Readers (:meth:`ModelRegistry.get`) take the same
lock for a dictionary lookup, so a request sees either the old or the
new version in its entirety, never a half-swapped state.  Versions
are monotonically increasing per name, so clients can detect a swap
from response metadata alone.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.obs import metrics as obs_metrics


class UnknownModelError(KeyError):
    """No model is registered under the requested name."""

    def __str__(self) -> str:  # KeyError quotes its arg; keep it readable
        return self.args[0] if self.args else ""


@dataclass(frozen=True)
class ModelVersion:
    """One promoted estimator: the registry's unit of hot-swap."""

    name: str
    version: int
    estimator: object = field(repr=False)
    #: where the estimator came from (``trained:LW-XGB``, ``loaded:<path>``).
    source: str = ""
    promoted_unix: float = 0.0

    @property
    def estimator_name(self) -> str:
        return getattr(self.estimator, "name", type(self.estimator).__name__)

    def describe(self) -> dict:
        """JSON-safe metadata (the ``/models`` payload entry)."""
        return {
            "name": self.name,
            "version": self.version,
            "estimator": self.estimator_name,
            "source": self.source,
            "promoted_unix": self.promoted_unix,
        }


class ModelRegistry:
    """Thread-safe name -> :class:`ModelVersion` map with swap history."""

    def __init__(self, default_name: str = "default"):
        self.default_name = default_name
        self._lock = threading.Lock()
        self._active: dict[str, ModelVersion] = {}
        self._versions: dict[str, int] = {}

    def promote(
        self, estimator, name: str | None = None, source: str = ""
    ) -> ModelVersion:
        """Atomically make ``estimator`` the active model under ``name``.

        The estimator must already be fitted — training is the caller's
        offline step; this method only swaps the pointer (and bumps the
        per-name version counter) under the lock.
        """
        name = name or self.default_name
        with self._lock:
            version = self._versions.get(name, 0) + 1
            self._versions[name] = version
            model = ModelVersion(
                name=name,
                version=version,
                estimator=estimator,
                source=source,
                promoted_unix=time.time(),
            )
            self._active[name] = model
        obs_metrics.registry().counter("serve.promotions").inc()
        obs_metrics.registry().gauge(f"serve.model_version.{name}").set(version)
        return model

    def get(self, name: str | None = None) -> ModelVersion:
        """The active version under ``name`` (default model when None)."""
        name = name or self.default_name
        with self._lock:
            model = self._active.get(name)
        if model is None:
            raise UnknownModelError(
                f"no model {name!r} is registered "
                f"(available: {', '.join(self.names()) or 'none'})"
            )
        return model

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._active)

    def __len__(self) -> int:
        with self._lock:
            return len(self._active)

    def describe(self) -> dict:
        """JSON-safe view of every active model (the ``/models`` payload)."""
        with self._lock:
            active = dict(self._active)
        return {
            "default": self.default_name,
            "models": {name: model.describe() for name, model in active.items()},
        }
