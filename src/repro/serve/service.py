"""The estimation service core, independent of any transport.

One :class:`EstimationService` owns everything a request needs:

- the live :class:`~repro.engine.database.Database` and its join
  graph (SQL is parsed against it, through a bounded parse cache —
  the serving analogue of a plan cache);
- a :class:`~repro.serve.registry.ModelRegistry` of hot-swappable
  estimators (promotion trains/loads *offline*, then swaps atomically);
- the :mod:`repro.resilience` policies applied per request: bounded
  retries, a per-request deadline, and the PostgreSQL-default
  fallback so an estimator failure degrades a response instead of
  erroring it;
- an optional :class:`~repro.serve.batching.MicroBatcher` coalescing
  concurrent single-query requests into one ``estimate_batch`` call
  (admission control included); without it, a bounded in-flight
  semaphore provides the same 429 semantics for direct execution.

Sub-plan-space requests go through
:func:`repro.resilience.inference.resilient_sub_plan_estimates`, i.e.
the same batched injection path the benchmark uses, so a serving
deployment prices a planner's whole sub-plan space in one call.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass

from repro.engine.database import Database
from repro.engine.query import Query
from repro.engine.sql import parse_query
from repro.estimators.base import EstimationError
from repro.obs import metrics as obs_metrics
from repro.resilience.fallback import PostgresDefaultFallback
from repro.resilience.inference import resilient_sub_plan_estimates
from repro.resilience.policy import Deadline, RetryPolicy, call_with_retry
from repro.serve import tracing as request_tracing
from repro.serve.batching import AdmissionError, MicroBatcher
from repro.serve.drift import DriftMonitor
from repro.serve.registry import ModelRegistry
from repro.serve.slo import SLOMonitor
from repro.serve.tracing import AccessLog, TraceLink, TraceSink

#: How many recently served requests keep their estimates around so a
#: later ``POST /feedback`` can resolve a ``request_id`` to the exact
#: (model, version, per-query estimate) that answered it.
_RECENT_REQUEST_CAP = 4096


class ServiceError(RuntimeError):
    """Base class for request-level service failures."""


class BadRequestError(ServiceError):
    """Malformed request content (unparseable SQL, wrong field types)."""


@dataclass
class ServeObservability:
    """The serving path's observability bundle (all parts optional).

    One instance is wired through :class:`EstimationService` into the
    app layer and the micro-batcher: the trace sink collects per-request
    and per-batch spans, the access log records one line per served
    request, the SLO monitor turns outcomes into burn rates, and the
    drift monitor folds est-vs-actual feedback into windowed q-errors.
    """

    trace_sink: TraceSink | None = None
    access_log: AccessLog | None = None
    slo: SLOMonitor | None = None
    drift: DriftMonitor | None = None

    @property
    def enabled(self) -> bool:
        return any(
            part is not None
            for part in (self.trace_sink, self.access_log, self.slo, self.drift)
        )

    def close(self) -> None:
        if self.trace_sink is not None:
            self.trace_sink.close()
        if self.access_log is not None:
            self.access_log.close()
        if self.drift is not None:
            self.drift.close()


class EstimationService:
    """Answers estimation requests; one instance per serving process."""

    def __init__(
        self,
        database: Database,
        registry: ModelRegistry | None = None,
        trainer=None,
        fallback=None,
        retry: RetryPolicy | None = None,
        request_timeout_seconds: float | None = None,
        batching: bool = True,
        batch_window_seconds: float = 0.001,
        max_queue: int = 256,
        max_batch: int = 1024,
        max_in_flight: int = 256,
        parse_cache_size: int = 2048,
        run_id: str = "",
        obs: ServeObservability | None = None,
        self_execute_every: int = 0,
    ):
        self.database = database
        self.registry = registry if registry is not None else ModelRegistry()
        self.run_id = run_id
        self.obs = obs if obs is not None else ServeObservability()
        self._trainer = trainer
        self._fallback = (
            fallback if fallback is not None else PostgresDefaultFallback(database)
        )
        self._retry = retry
        self._request_timeout = request_timeout_seconds
        self._parse_cache: OrderedDict[str, Query] = OrderedDict()
        self._parse_cache_size = parse_cache_size
        self._parse_lock = threading.Lock()
        self._promote_lock = threading.Lock()
        self._max_in_flight = max_in_flight
        self._in_flight = threading.BoundedSemaphore(max_in_flight)
        self._started_monotonic = time.monotonic()
        self.shutdown_requested = threading.Event()
        self.batcher: MicroBatcher | None = (
            MicroBatcher(
                self._run_batch,
                max_queue=max_queue,
                window_seconds=batch_window_seconds,
                max_batch=max_batch,
                trace_sink=self.obs.trace_sink,
            )
            if batching
            else None
        )
        # Recently served requests, for /feedback request_id resolution.
        self._recent: OrderedDict[str, dict] = OrderedDict()
        self._recent_lock = threading.Lock()
        # Optional self-execution sampler: every Nth served query is
        # executed for ground truth on a background thread.
        self._self_execute_every = max(0, int(self_execute_every))
        self._self_exec_seq = 0
        self._self_exec_queue: queue.Queue | None = None
        self._self_exec_thread: threading.Thread | None = None
        if self._self_execute_every and self.obs.drift is not None:
            self._self_exec_queue = queue.Queue(maxsize=64)
            self._self_exec_thread = threading.Thread(
                target=self._self_execute_worker,
                name="repro-serve-selfexec",
                daemon=True,
            )

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "EstimationService":
        if self.batcher is not None:
            self.batcher.start()
        if self._self_exec_thread is not None:
            self._self_exec_thread.start()
        return self

    def close(self) -> None:
        if self.batcher is not None:
            self.batcher.close()
        if self._self_exec_thread is not None and self._self_exec_thread.is_alive():
            try:
                self._self_exec_queue.put_nowait(None)  # wake + stop
            except queue.Full:
                pass
            self._self_exec_thread.join(timeout=5.0)
        self.obs.close()

    @property
    def batching(self) -> bool:
        return self.batcher is not None

    def uptime_seconds(self) -> float:
        return time.monotonic() - self._started_monotonic

    # -- request building blocks -------------------------------------------

    def parse(self, sql) -> Query:
        """SQL -> :class:`Query` through the bounded parse cache."""
        if not isinstance(sql, str) or not sql.strip():
            raise BadRequestError("'sql' must be a non-empty string")
        with self._parse_lock:
            cached = self._parse_cache.get(sql)
            if cached is not None:
                self._parse_cache.move_to_end(sql)
                return cached
        try:
            query = parse_query(sql, self.database.join_graph, name="serve")
        except Exception as error:
            raise BadRequestError(f"cannot parse SQL: {error}") from error
        with self._parse_lock:
            self._parse_cache[sql] = query
            while len(self._parse_cache) > self._parse_cache_size:
                self._parse_cache.popitem(last=False)
        return query

    def _run_batch(
        self, model: str | None, queries: list[Query]
    ) -> tuple[list[float], int]:
        """Batch execution hook (collector thread *and* direct path).

        Resolves the model at call time — so promotions apply to queued
        requests — and clamps estimates to >= 1 row like the injection
        pass.  Raises whatever the estimator raises; per-request
        fallback handling lives in :meth:`estimate_many`.
        """
        active = self.registry.get(model)
        started = time.perf_counter()
        with request_tracing.span(
            "inference",
            estimator=active.estimator_name,
            queries=len(queries),
            version=active.version,
        ):
            values = active.estimator.estimate_batch(queries)
        elapsed = time.perf_counter() - started
        if len(values) != len(queries):
            raise EstimationError(
                f"{active.estimator_name}.estimate_batch returned "
                f"{len(values)} estimates for {len(queries)} queries"
            )
        registry = obs_metrics.registry()
        registry.histogram(
            f"serve.inference_seconds.{active.estimator_name}"
        ).observe(elapsed)
        return [max(1.0, float(value)) for value in values], active.version

    # -- endpoints ---------------------------------------------------------

    def estimate_many(
        self, sqls: list, model: str | None = None, request_id: str = ""
    ) -> dict:
        """Price ``sqls`` (the /estimate and /estimate_batch core).

        With micro-batching the queries ride the collector thread and
        may share an ``estimate_batch`` call with other clients'
        requests; without it they run directly under the in-flight
        semaphore.  Either way the request is wrapped in the service's
        retry policy, and a final failure degrades to the
        PostgreSQL-default fallback (flagged in the response) instead
        of erroring — the serving analogue of campaign failure
        isolation.
        """
        if not isinstance(sqls, list) or not sqls:
            raise BadRequestError("'sql' must be a non-empty string or list")
        with request_tracing.span("parse", queries=len(sqls)):
            queries = [self.parse(sql) for sql in sqls]
        model_name = self.registry.get(model).name  # 404 before queueing
        deadline = Deadline.after(self._request_timeout)
        fallback_used = False
        try:
            values, version = call_with_retry(
                lambda: self._submit(model_name, queries, deadline),
                self._retry,
                non_retryable=(EstimationError, AdmissionError),
                deadline=deadline,
                on_retry=lambda *_: obs_metrics.registry()
                .counter("serve.request_retries")
                .inc(),
            )[0]
        except AdmissionError:
            raise
        except Exception as error:
            # Graceful degradation: stat-free fallback estimates, the
            # request is answered (and flagged) rather than failed.
            values = [
                max(1.0, float(self._fallback.estimate(query)))
                for query in queries
            ]
            version = self.registry.get(model_name).version
            fallback_used = True
            obs_metrics.registry().counter("serve.fallback_requests").inc()
            error_text = f"{type(error).__name__}: {error}"
        result = {
            "model": model_name,
            "version": version,
            "estimates": values,
            "batched": self.batching,
            "fallback": fallback_used,
        }
        if fallback_used:
            result["error"] = error_text
        if request_id:
            result["request_id"] = request_id
        if self.obs.drift is not None:
            self._note_served(
                request_id, model_name, version, sqls, queries, values
            )
        return result

    def _note_served(
        self,
        request_id: str,
        model_name: str,
        version: int,
        sqls: list,
        queries: list[Query],
        values: list[float],
    ) -> None:
        """Remember what was served (feedback + self-execution sampling)."""
        estimator = self.registry.get(model_name).estimator_name
        entries = [
            {
                "sql": sql,
                "template": tuple(sorted(query.tables)),
                "estimate": float(value),
            }
            for sql, query, value in zip(sqls, queries, values)
        ]
        if request_id:
            with self._recent_lock:
                self._recent[request_id] = {
                    "model": model_name,
                    "version": version,
                    "estimator": estimator,
                    "queries": entries,
                }
                while len(self._recent) > _RECENT_REQUEST_CAP:
                    self._recent.popitem(last=False)
        if self._self_exec_queue is not None:
            for entry, query in zip(entries, queries):
                self._self_exec_seq += 1
                if self._self_exec_seq % self._self_execute_every:
                    continue
                try:
                    self._self_exec_queue.put_nowait(
                        (model_name, version, estimator, request_id, entry, query)
                    )
                except queue.Full:
                    obs_metrics.registry().counter(
                        "serve.self_execution_dropped"
                    ).inc()

    def _submit(
        self, model_name: str, queries: list[Query], deadline: Deadline
    ) -> tuple[list[float], int]:
        if self.batcher is not None:
            timeout = deadline.tightest(30.0)
            tracer = request_tracing.current_tracer()
            if tracer is None:
                return self.batcher.submit(model_name, queries, timeout)
            # The queue_wait span covers enqueue->resolve; the link the
            # collector fills lets this trace name the batch span (and
            # registry version) that actually served it.
            with tracer.span("queue_wait", queries=len(queries)) as wait_span:
                link = TraceLink(tracer.trace_id, wait_span.span_id)
                outcome = self.batcher.submit(
                    model_name, queries, timeout, link=link
                )
                if link.batch_span_id is not None:
                    wait_span.set(
                        batch_span_id=link.batch_span_id, version=link.version
                    )
            return outcome
        if not self._in_flight.acquire(blocking=False):
            obs_metrics.registry().counter("serve.admission_rejected").inc()
            raise AdmissionError(
                f"too many requests in flight ({self._max_in_flight})"
            )
        try:
            return self._run_batch(model_name, queries)
        finally:
            self._in_flight.release()

    def sub_plans(
        self, sql: str, model: str | None = None, request_id: str = ""
    ) -> dict:
        """Price the whole sub-plan space of ``sql`` (the /subplans core).

        Runs the same failure-isolated batched path the benchmark's
        injection step uses: one ``estimate_batch`` call over every
        connected sub-plan on the fast path, per-sub-plan
        retry/fallback when the estimator misbehaves or a per-request
        deadline needs cooperative checking.
        """
        with request_tracing.span("parse", queries=1):
            query = self.parse(sql)
        active = self.registry.get(model)
        with request_tracing.span(
            "inference",
            estimator=active.estimator_name,
            version=active.version,
            mode="sub_plans",
        ):
            outcome = resilient_sub_plan_estimates(
                active.estimator,
                query,
                fallback=self._fallback,
                retry=self._retry,
                deadline=Deadline.after(self._request_timeout),
            )
        sub_plans = [
            {"tables": sorted(subset), "estimate": estimate}
            for subset, estimate in sorted(
                outcome.cards.items(),
                key=lambda item: (len(item[0]), sorted(item[0])),
            )
        ]
        result = {
            "model": active.name,
            "version": active.version,
            "estimator": active.estimator_name,
            "sub_plans": sub_plans,
            "failed_sub_plans": len(outcome.failures),
            "fallback_estimates": outcome.fallback_count,
            "attempts": outcome.attempts,
        }
        if request_id:
            result["request_id"] = request_id
        return result

    # -- accuracy feedback -------------------------------------------------

    def feedback(self, payload: dict) -> dict:
        """Fold actual cardinalities into the drift monitor (POST /feedback).

        Two forms: ``{"request_id": ..., "actuals": [...]}`` resolves a
        recently served request to the exact estimates (and registry
        version) that answered it; ``{"sql": ..., "estimate": ...,
        "actual": ...}`` reports a standalone pair (the estimate is
        recomputed against the current model when omitted).
        """
        drift = self.obs.drift
        if drift is None:
            raise BadRequestError("drift monitoring is disabled on this server")
        if not isinstance(payload, dict):
            raise BadRequestError("feedback body must be a JSON object")
        records: list[dict] = []
        request_id = payload.get("request_id")
        if request_id is not None:
            with self._recent_lock:
                entry = self._recent.pop(str(request_id), None)
            if entry is None:
                raise BadRequestError(
                    f"unknown or expired request_id {request_id!r}"
                )
            actuals = payload.get("actuals")
            if actuals is None and "actual" in payload:
                actuals = [payload["actual"]]
            if not isinstance(actuals, list) or len(actuals) != len(
                entry["queries"]
            ):
                raise BadRequestError(
                    f"'actuals' must be a list of {len(entry['queries'])} "
                    "values (one per served query)"
                )
            for served, actual in zip(entry["queries"], actuals):
                records.append(
                    drift.observe(
                        model=entry["model"],
                        version=entry["version"],
                        template=served["template"],
                        estimate=served["estimate"],
                        actual=_as_rows(actual),
                        estimator=entry["estimator"],
                        request_id=str(request_id),
                        source="feedback",
                        sql=served["sql"],
                    )
                )
        else:
            sql = payload.get("sql")
            if not isinstance(sql, str) or "actual" not in payload:
                raise BadRequestError(
                    "feedback needs 'request_id' or 'sql' plus 'actual'"
                )
            query = self.parse(sql)
            active = self.registry.get(payload.get("model"))
            estimate = payload.get("estimate")
            if estimate is None:
                estimate = self.estimate_many([sql], model=active.name)[
                    "estimates"
                ][0]
            records.append(
                drift.observe(
                    model=active.name,
                    version=active.version,
                    template=tuple(sorted(query.tables)),
                    estimate=_as_rows(estimate),
                    actual=_as_rows(payload["actual"]),
                    estimator=active.estimator_name,
                    source="feedback",
                    sql=sql,
                )
            )
        obs_metrics.registry().counter("serve.feedback_pairs").inc(len(records))
        return {
            "accepted": len(records),
            "q_errors": [round(record["q_error"], 4) for record in records],
            "degraded_windows": drift.snapshot()["degraded_windows"],
        }

    def _self_execute_worker(self) -> None:
        """Ground-truth sampler: execute sampled queries, feed the monitor."""
        from repro.core.truecards import TrueCardinalityService

        truth: TrueCardinalityService | None = None
        registry = obs_metrics.registry()
        while True:
            item = self._self_exec_queue.get()
            if item is None:
                return
            model_name, version, estimator, request_id, entry, query = item
            try:
                if truth is None:
                    truth = TrueCardinalityService(self.database)
                actual = truth.cardinality(query)
                self.obs.drift.observe(
                    model=model_name,
                    version=version,
                    template=entry["template"],
                    estimate=entry["estimate"],
                    actual=float(actual),
                    estimator=estimator,
                    request_id=request_id,
                    source="self_execution",
                    sql=entry["sql"],
                )
                registry.counter("serve.self_execution_pairs").inc()
            except Exception:
                registry.counter("serve.self_execution_failures").inc()

    def promote(
        self,
        name: str | None = None,
        estimator_name: str | None = None,
        path: str | None = None,
    ) -> dict:
        """Train or load an estimator offline, then hot-swap it in.

        Exactly one of ``estimator_name`` (train via the configured
        trainer) or ``path`` (load a file saved by
        :func:`repro.estimators.persistence.save_estimator`) must be
        given.  The expensive step runs outside the registry lock —
        requests keep being served by the current version until the
        atomic swap.  ``_promote_lock`` serialises concurrent
        promotions so two trainings cannot interleave their swaps.
        """
        if (estimator_name is None) == (path is None):
            raise BadRequestError(
                "promote needs exactly one of 'estimator' or 'path'"
            )
        with self._promote_lock:
            started = time.perf_counter()
            if estimator_name is not None:
                if self._trainer is None:
                    raise BadRequestError(
                        "this server has no trainer configured; "
                        "promote from a saved model 'path' instead"
                    )
                try:
                    estimator = self._trainer(estimator_name)
                except KeyError:
                    raise BadRequestError(
                        f"unknown estimator {estimator_name!r}"
                    ) from None
                source = f"trained:{estimator_name}"
            else:
                from repro.estimators.persistence import (
                    PersistenceError,
                    load_estimator,
                )

                try:
                    estimator = load_estimator(path, database=self.database)
                except (OSError, PersistenceError) as error:
                    raise BadRequestError(f"cannot load {path}: {error}") from error
                source = f"loaded:{path}"
            elapsed = time.perf_counter() - started
            model = self.registry.promote(estimator, name=name, source=source)
        return {
            "promoted": model.describe(),
            "prepare_seconds": elapsed,
        }

    # -- health ------------------------------------------------------------

    def healthz(self) -> dict:
        health = {
            "status": "ok",
            "run_id": self.run_id,
            "uptime_seconds": round(self.uptime_seconds(), 3),
            "batching": self.batching,
            "queue_depth": self.batcher.depth if self.batcher else 0,
            "models": {
                name: self.registry.get(name).version
                for name in self.registry.names()
            },
        }
        if self.obs.slo is not None:
            health["slo"] = self.obs.slo.snapshot()
        if self.obs.drift is not None:
            drift = self.obs.drift.snapshot()
            health["drift"] = {
                "events": drift["events"],
                "degraded_windows": drift["degraded_windows"],
                "tracked_windows": len(drift["windows"]),
                "degraded": [
                    entry for entry in drift["windows"] if entry["degraded"]
                ],
            }
        return health


def _as_rows(value) -> float:
    """Coerce a client-supplied cardinality; reject junk as a 400."""
    try:
        rows = float(value)
    except (TypeError, ValueError):
        raise BadRequestError(
            f"cardinality values must be numbers, got {value!r}"
        ) from None
    if rows < 0 or rows != rows:  # negative or NaN
        raise BadRequestError(f"cardinality values must be >= 0, got {value!r}")
    return rows
