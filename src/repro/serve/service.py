"""The estimation service core, independent of any transport.

One :class:`EstimationService` owns everything a request needs:

- the live :class:`~repro.engine.database.Database` and its join
  graph (SQL is parsed against it, through a bounded parse cache —
  the serving analogue of a plan cache);
- a :class:`~repro.serve.registry.ModelRegistry` of hot-swappable
  estimators (promotion trains/loads *offline*, then swaps atomically);
- the :mod:`repro.resilience` policies applied per request: bounded
  retries, a per-request deadline, and the PostgreSQL-default
  fallback so an estimator failure degrades a response instead of
  erroring it;
- an optional :class:`~repro.serve.batching.MicroBatcher` coalescing
  concurrent single-query requests into one ``estimate_batch`` call
  (admission control included); without it, a bounded in-flight
  semaphore provides the same 429 semantics for direct execution.

Sub-plan-space requests go through
:func:`repro.resilience.inference.resilient_sub_plan_estimates`, i.e.
the same batched injection path the benchmark uses, so a serving
deployment prices a planner's whole sub-plan space in one call.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict

from repro.engine.database import Database
from repro.engine.query import Query
from repro.engine.sql import parse_query
from repro.estimators.base import EstimationError
from repro.obs import metrics as obs_metrics
from repro.resilience.fallback import PostgresDefaultFallback
from repro.resilience.inference import resilient_sub_plan_estimates
from repro.resilience.policy import Deadline, RetryPolicy, call_with_retry
from repro.serve.batching import AdmissionError, MicroBatcher
from repro.serve.registry import ModelRegistry


class ServiceError(RuntimeError):
    """Base class for request-level service failures."""


class BadRequestError(ServiceError):
    """Malformed request content (unparseable SQL, wrong field types)."""


class EstimationService:
    """Answers estimation requests; one instance per serving process."""

    def __init__(
        self,
        database: Database,
        registry: ModelRegistry | None = None,
        trainer=None,
        fallback=None,
        retry: RetryPolicy | None = None,
        request_timeout_seconds: float | None = None,
        batching: bool = True,
        batch_window_seconds: float = 0.001,
        max_queue: int = 256,
        max_batch: int = 1024,
        max_in_flight: int = 256,
        parse_cache_size: int = 2048,
        run_id: str = "",
    ):
        self.database = database
        self.registry = registry if registry is not None else ModelRegistry()
        self.run_id = run_id
        self._trainer = trainer
        self._fallback = (
            fallback if fallback is not None else PostgresDefaultFallback(database)
        )
        self._retry = retry
        self._request_timeout = request_timeout_seconds
        self._parse_cache: OrderedDict[str, Query] = OrderedDict()
        self._parse_cache_size = parse_cache_size
        self._parse_lock = threading.Lock()
        self._promote_lock = threading.Lock()
        self._max_in_flight = max_in_flight
        self._in_flight = threading.BoundedSemaphore(max_in_flight)
        self._started_monotonic = time.monotonic()
        self.shutdown_requested = threading.Event()
        self.batcher: MicroBatcher | None = (
            MicroBatcher(
                self._run_batch,
                max_queue=max_queue,
                window_seconds=batch_window_seconds,
                max_batch=max_batch,
            )
            if batching
            else None
        )

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "EstimationService":
        if self.batcher is not None:
            self.batcher.start()
        return self

    def close(self) -> None:
        if self.batcher is not None:
            self.batcher.close()

    @property
    def batching(self) -> bool:
        return self.batcher is not None

    def uptime_seconds(self) -> float:
        return time.monotonic() - self._started_monotonic

    # -- request building blocks -------------------------------------------

    def parse(self, sql) -> Query:
        """SQL -> :class:`Query` through the bounded parse cache."""
        if not isinstance(sql, str) or not sql.strip():
            raise BadRequestError("'sql' must be a non-empty string")
        with self._parse_lock:
            cached = self._parse_cache.get(sql)
            if cached is not None:
                self._parse_cache.move_to_end(sql)
                return cached
        try:
            query = parse_query(sql, self.database.join_graph, name="serve")
        except Exception as error:
            raise BadRequestError(f"cannot parse SQL: {error}") from error
        with self._parse_lock:
            self._parse_cache[sql] = query
            while len(self._parse_cache) > self._parse_cache_size:
                self._parse_cache.popitem(last=False)
        return query

    def _run_batch(
        self, model: str | None, queries: list[Query]
    ) -> tuple[list[float], int]:
        """Batch execution hook (collector thread *and* direct path).

        Resolves the model at call time — so promotions apply to queued
        requests — and clamps estimates to >= 1 row like the injection
        pass.  Raises whatever the estimator raises; per-request
        fallback handling lives in :meth:`estimate_many`.
        """
        active = self.registry.get(model)
        started = time.perf_counter()
        values = active.estimator.estimate_batch(queries)
        elapsed = time.perf_counter() - started
        if len(values) != len(queries):
            raise EstimationError(
                f"{active.estimator_name}.estimate_batch returned "
                f"{len(values)} estimates for {len(queries)} queries"
            )
        registry = obs_metrics.registry()
        registry.histogram(
            f"serve.inference_seconds.{active.estimator_name}"
        ).observe(elapsed)
        return [max(1.0, float(value)) for value in values], active.version

    # -- endpoints ---------------------------------------------------------

    def estimate_many(self, sqls: list, model: str | None = None) -> dict:
        """Price ``sqls`` (the /estimate and /estimate_batch core).

        With micro-batching the queries ride the collector thread and
        may share an ``estimate_batch`` call with other clients'
        requests; without it they run directly under the in-flight
        semaphore.  Either way the request is wrapped in the service's
        retry policy, and a final failure degrades to the
        PostgreSQL-default fallback (flagged in the response) instead
        of erroring — the serving analogue of campaign failure
        isolation.
        """
        if not isinstance(sqls, list) or not sqls:
            raise BadRequestError("'sql' must be a non-empty string or list")
        queries = [self.parse(sql) for sql in sqls]
        model_name = self.registry.get(model).name  # 404 before queueing
        deadline = Deadline.after(self._request_timeout)
        fallback_used = False
        try:
            values, version = call_with_retry(
                lambda: self._submit(model_name, queries, deadline),
                self._retry,
                non_retryable=(EstimationError, AdmissionError),
                deadline=deadline,
                on_retry=lambda *_: obs_metrics.registry()
                .counter("serve.request_retries")
                .inc(),
            )[0]
        except AdmissionError:
            raise
        except Exception as error:
            # Graceful degradation: stat-free fallback estimates, the
            # request is answered (and flagged) rather than failed.
            values = [
                max(1.0, float(self._fallback.estimate(query)))
                for query in queries
            ]
            version = self.registry.get(model_name).version
            fallback_used = True
            obs_metrics.registry().counter("serve.fallback_requests").inc()
            error_text = f"{type(error).__name__}: {error}"
        result = {
            "model": model_name,
            "version": version,
            "estimates": values,
            "batched": self.batching,
            "fallback": fallback_used,
        }
        if fallback_used:
            result["error"] = error_text
        return result

    def _submit(
        self, model_name: str, queries: list[Query], deadline: Deadline
    ) -> tuple[list[float], int]:
        if self.batcher is not None:
            timeout = deadline.tightest(30.0)
            return self.batcher.submit(model_name, queries, timeout)
        if not self._in_flight.acquire(blocking=False):
            obs_metrics.registry().counter("serve.admission_rejected").inc()
            raise AdmissionError(
                f"too many requests in flight ({self._max_in_flight})"
            )
        try:
            return self._run_batch(model_name, queries)
        finally:
            self._in_flight.release()

    def sub_plans(self, sql: str, model: str | None = None) -> dict:
        """Price the whole sub-plan space of ``sql`` (the /subplans core).

        Runs the same failure-isolated batched path the benchmark's
        injection step uses: one ``estimate_batch`` call over every
        connected sub-plan on the fast path, per-sub-plan
        retry/fallback when the estimator misbehaves or a per-request
        deadline needs cooperative checking.
        """
        query = self.parse(sql)
        active = self.registry.get(model)
        outcome = resilient_sub_plan_estimates(
            active.estimator,
            query,
            fallback=self._fallback,
            retry=self._retry,
            deadline=Deadline.after(self._request_timeout),
        )
        sub_plans = [
            {"tables": sorted(subset), "estimate": estimate}
            for subset, estimate in sorted(
                outcome.cards.items(),
                key=lambda item: (len(item[0]), sorted(item[0])),
            )
        ]
        return {
            "model": active.name,
            "version": active.version,
            "estimator": active.estimator_name,
            "sub_plans": sub_plans,
            "failed_sub_plans": len(outcome.failures),
            "fallback_estimates": outcome.fallback_count,
            "attempts": outcome.attempts,
        }

    def promote(
        self,
        name: str | None = None,
        estimator_name: str | None = None,
        path: str | None = None,
    ) -> dict:
        """Train or load an estimator offline, then hot-swap it in.

        Exactly one of ``estimator_name`` (train via the configured
        trainer) or ``path`` (load a file saved by
        :func:`repro.estimators.persistence.save_estimator`) must be
        given.  The expensive step runs outside the registry lock —
        requests keep being served by the current version until the
        atomic swap.  ``_promote_lock`` serialises concurrent
        promotions so two trainings cannot interleave their swaps.
        """
        if (estimator_name is None) == (path is None):
            raise BadRequestError(
                "promote needs exactly one of 'estimator' or 'path'"
            )
        with self._promote_lock:
            started = time.perf_counter()
            if estimator_name is not None:
                if self._trainer is None:
                    raise BadRequestError(
                        "this server has no trainer configured; "
                        "promote from a saved model 'path' instead"
                    )
                try:
                    estimator = self._trainer(estimator_name)
                except KeyError:
                    raise BadRequestError(
                        f"unknown estimator {estimator_name!r}"
                    ) from None
                source = f"trained:{estimator_name}"
            else:
                from repro.estimators.persistence import (
                    PersistenceError,
                    load_estimator,
                )

                try:
                    estimator = load_estimator(path, database=self.database)
                except (OSError, PersistenceError) as error:
                    raise BadRequestError(f"cannot load {path}: {error}") from error
                source = f"loaded:{path}"
            elapsed = time.perf_counter() - started
            model = self.registry.promote(estimator, name=name, source=source)
        return {
            "promoted": model.describe(),
            "prepare_seconds": elapsed,
        }

    # -- health ------------------------------------------------------------

    def healthz(self) -> dict:
        return {
            "status": "ok",
            "run_id": self.run_id,
            "uptime_seconds": round(self.uptime_seconds(), 3),
            "batching": self.batching,
            "queue_depth": self.batcher.depth if self.batcher else 0,
            "models": {
                name: self.registry.get(name).version
                for name in self.registry.names()
            },
        }
