"""Dynamic-data experiment (Table 6 of the paper).

Procedure, mirroring Section 6.3: split STATS by tuple timestamps,
train a stale model on the pre-split data, insert the remaining rows,
measure each method's incremental update time, and re-run the
end-to-end benchmark with the updated model — exposing both update
*speed* and update *accuracy* (structure-frozen models degrade).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.benchmark import EndToEndBenchmark, EstimatorRun
from repro.datasets.stats_db import SPLIT_DAY, split_by_date
from repro.engine.database import Database
from repro.estimators.base import CardinalityEstimator
from repro.workloads.generator import Workload


@dataclass
class UpdateResult:
    """Table-6 row for one estimator."""

    estimator_name: str
    training_seconds: float
    update_seconds: float
    run_after_update: EstimatorRun


def run_update_experiment(
    database: Database,
    workload: Workload,
    estimator: CardinalityEstimator,
    split_day: int = SPLIT_DAY,
    max_intermediate_rows: int = 20_000_000,
) -> UpdateResult:
    """Stale-fit, insert, update, re-benchmark one estimator.

    ``database`` must be freshly built (it is split, then re-assembled
    by insertion, so the updated content equals the original rows in a
    different order — all workload cardinalities stay valid).
    """
    stale_db, new_rows = split_by_date(database, split_day)
    estimator.fit(stale_db)

    for table_name, delta in new_rows.items():
        if delta.num_rows:
            stale_db.insert(table_name, delta)

    started = time.perf_counter()
    estimator.update(new_rows)
    update_seconds = time.perf_counter() - started

    benchmark = EndToEndBenchmark(
        stale_db, workload, max_intermediate_rows=max_intermediate_rows
    )
    run = benchmark.run(estimator)
    return UpdateResult(
        estimator_name=estimator.name,
        training_seconds=estimator.training_seconds,
        update_seconds=update_seconds,
        run_after_update=run,
    )
