"""Multi-process workload evaluation.

Fans the per-query work of one :class:`EndToEndBenchmark
<repro.core.benchmark.EndToEndBenchmark>` run across a fork-based
process pool.  Forking gives every worker copy-on-write access to the
parent's numpy column arrays — no serialization of the database, the
estimator or the workload ever happens; only the small, picklable
``QueryRun`` results and per-worker metrics dumps travel back over the
result queue.

Guarantees:

- **Deterministic ordering** — results come back in workload order
  regardless of which worker finished first (``Pool.map`` semantics).
- **Metrics fidelity** — each task resets the worker's process-local
  metrics registry, runs its query, and ships a lossless
  :meth:`MetricsRegistry.dump`; the parent merges every dump, so
  counters (aborts, cache hits, planner effort) aggregate exactly as
  in a serial run.
- **Timing fidelity** — workers execute the same untimed-cache policy
  as the serial path; per-query ``inference/planning/execution``
  timings are measured inside the worker exactly as serially.  Note
  that with more workers than cores the *per-query* wall times can
  stretch under CPU contention; wall-clock of the whole run is what
  parallelism buys.

Tracing is process-local, so workers deactivate any tracer inherited
from the parent; parallel runs therefore produce no per-query trace
spans (the parent's top-level spans still record the run).

On platforms without the ``fork`` start method the caller falls back
to the serial loop.
"""

from __future__ import annotations

import multiprocessing
import os

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

#: Parent-side state inherited by forked workers.  Set immediately
#: before the pool is created, cleared right after; never pickled.
_FORK_STATE = None


def fork_available() -> bool:
    """Whether fork-based pools (and thus parallel runs) are usable."""
    return "fork" in multiprocessing.get_all_start_methods()


def default_workers() -> int:
    """A sensible worker count: the CPUs this process may schedule on."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # non-Linux
        return max(1, os.cpu_count() or 1)


def _worker_init() -> None:
    # Tracing is process-local: spans recorded in a forked worker
    # would be lost (and cost time), so switch any inherited tracer
    # off and start from a clean metrics slate.
    obs_trace.deactivate()
    obs_metrics.reset()


def _run_one(index: int):
    benchmark, estimator, queries = _FORK_STATE
    obs_metrics.reset()
    run = benchmark._run_query(estimator, queries[index])
    return index, run, obs_metrics.registry().dump()


def run_parallel(benchmark, estimator, queries, workers: int):
    """Evaluate ``queries`` with ``estimator`` across ``workers`` processes.

    Returns the list of ``QueryRun`` results in workload order; every
    worker's metrics are merged into the parent registry before
    returning.  The caller is responsible for estimator preparation
    (fit / preload) *before* this call so the forked children inherit
    the ready state.
    """
    global _FORK_STATE
    if not fork_available():
        raise RuntimeError("parallel benchmark runs require the 'fork' start method")
    context = multiprocessing.get_context("fork")
    _FORK_STATE = (benchmark, estimator, list(queries))
    try:
        with context.Pool(processes=workers, initializer=_worker_init) as pool:
            # chunksize=1: queries vary wildly in cost; fine-grained
            # dispatch keeps the stragglers from serializing the run.
            outcomes = pool.map(_run_one, range(len(queries)), chunksize=1)
    finally:
        _FORK_STATE = None
    registry = obs_metrics.registry()
    runs = [None] * len(queries)
    for index, run, dump in outcomes:
        runs[index] = run
        registry.merge(dump)
    return runs
