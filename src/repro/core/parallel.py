"""Multi-process workload evaluation with worker-crash recovery.

Fans the per-query work of one :class:`EndToEndBenchmark
<repro.core.benchmark.EndToEndBenchmark>` run across fork-based worker
processes.  Forking gives every worker copy-on-write access to the
parent's numpy column arrays — no serialization of the database, the
estimator or the workload ever happens; only the small, picklable
``QueryRun`` results and per-worker metrics dumps travel back to the
parent.

Guarantees:

- **Deterministic ordering** — results are returned in workload order
  regardless of which worker finished first.
- **Metrics fidelity** — each task resets the worker's process-local
  metrics registry, runs its query, and ships a lossless
  :meth:`MetricsRegistry.dump`; the parent merges every dump *as it
  arrives*, so counters (aborts, cache hits, planner effort) aggregate
  exactly as in a serial run — and survive an interrupted run.
- **Timing fidelity** — workers execute the same untimed-cache policy
  as the serial path; per-query ``inference/planning/execution``
  timings are measured inside the worker exactly as serially.  Note
  that with more workers than cores the *per-query* wall times can
  stretch under CPU contention; wall-clock of the whole run is what
  parallelism buys.
- **Chunked dispatch** — workers claim queries in chunks of K per
  queue round-trip (K sized from the workload and worker count, or
  explicitly via ``chunk_size``) instead of one at a time, so queue
  synchronisation overhead is amortised across K queries.  Results
  still stream back per query over the worker's pipe, and ordering,
  metrics and crash semantics are unchanged from per-query dispatch.
- **Crash recovery** — each worker reports results over its own pipe,
  announces its claimed chunk, and claims each query (synchronously,
  so the claim cannot be lost) before running it.  A worker death
  (``os._exit``, segfault, OOM kill) surfaces as EOF on its pipe
  *after* its buffered messages are drained; the whole in-flight chunk
  is requeued — the query that was mid-run counts against its
  ``max_crash_retries`` budget (past it, the query is recorded as a
  *failed* ``QueryRun`` rather than hanging or losing the run), while
  the chunk's not-yet-started queries are requeued without blame.
  Every crash increments ``benchmark.worker_crashes``.
- **Interrupt salvage** — if the parent is interrupted
  (KeyboardInterrupt or any other error), metrics of completed queries
  are already merged and checkpointed runs already flushed; the
  exception is re-raised with a ``salvaged_runs`` attribute carrying
  the completed ``QueryRun``s and a clear note printed to stderr.

Tracing is process-local, so workers deactivate any tracer inherited
from the parent; parallel runs therefore produce no per-query trace
spans (the parent's top-level spans still record the run).

On platforms without the ``fork`` start method the caller falls back
to the serial loop.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import time
from multiprocessing import connection as mp_connection
from multiprocessing import shared_memory

import numpy as np

from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.obs import progress as obs_progress
from repro.obs import trace as obs_trace
from repro.obs.prof import phases as prof_phases

#: Parent-side state inherited by forked workers.  Set immediately
#: before the workers are spawned, restored under try/finally even
#: when spawning itself fails; never pickled.
_FORK_STATE = None

#: How long the dispatcher waits for worker messages before checking
#: the campaign deadline.
_POLL_SECONDS = 0.05

#: Grace period for workers to drain their sentinel and exit.
_JOIN_SECONDS = 5.0

#: Tables at least this big have their column arrays moved into POSIX
#: shared memory before the pool forks (see :class:`SharedColumns`).
#: Small tables stay on the heap: a segment per tiny column would cost
#: more in mappings than copy-on-write could ever lose.
SHARE_COLUMNS_MIN_BYTES = 8 << 20


class SharedColumns:
    """Back the largest tables' column arrays with shared memory.

    Fork gives workers copy-on-write access to the parent's numpy
    arrays, but CoW is per-page and fragile: parent-side refcount
    updates and allocator churn on pages holding (or neighbouring) the
    big column buffers fault private copies into every worker.
    Re-pointing those buffers into ``multiprocessing.shared_memory``
    segments *before* the fork pins a single copy in a dedicated
    mapping every worker reads directly — an N-worker STATS-scale pool
    keeps one copy of the big columns instead of up to N+1.

    Only tables of at least ``min_table_bytes`` are moved; object-dtype
    and zero-length arrays stay put.  Sharing is value-preserving and
    invisible to readers, and the shared arrays are marked read-only so
    a buggy in-place write fails loudly instead of silently leaking
    into sibling workers.  :meth:`restore` re-points the columns at the
    original heap arrays and unlinks every segment (idempotent; the
    children forked meanwhile keep their mappings until they exit).
    """

    def __init__(self, database, min_table_bytes: int = SHARE_COLUMNS_MIN_BYTES):
        self._database = database
        self._min_table_bytes = min_table_bytes
        self._segments: list[shared_memory.SharedMemory] = []
        self._originals: list[tuple[object, str, np.ndarray]] = []
        self.shared_bytes = 0
        self.shared_tables: tuple[str, ...] = ()

    def share(self) -> None:
        """Move qualifying column arrays into shared memory (once)."""
        if self._database is None or self._originals:
            return
        shared_tables: list[str] = []
        for name, table in self._database.tables.items():
            if table.nbytes() < self._min_table_bytes:
                continue
            moved = 0
            for column in table.columns.values():
                for attr in ("values", "null_mask"):
                    moved += self._share_array(column, attr)
            if moved:
                shared_tables.append(name)
                self.shared_bytes += moved
        self.shared_tables = tuple(shared_tables)

    def _share_array(self, column, attr: str) -> int:
        array = getattr(column, attr)
        if array.nbytes == 0 or array.dtype.hasobject or not array.flags.c_contiguous:
            return 0
        segment = shared_memory.SharedMemory(create=True, size=array.nbytes)
        shared = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
        shared[...] = array
        shared.flags.writeable = False
        self._segments.append(segment)
        self._originals.append((column, attr, array))
        setattr(column, attr, shared)
        return array.nbytes

    def restore(self) -> None:
        """Re-point columns at their heap arrays; unlink every segment."""
        for column, attr, array in self._originals:
            setattr(column, attr, array)
        self._originals.clear()
        for segment in self._segments:
            try:
                segment.close()
            except BufferError:
                pass  # a stale reader still holds a view; unlink regardless
            try:
                segment.unlink()
            except FileNotFoundError:
                pass
        self._segments.clear()

    def __enter__(self) -> "SharedColumns":
        self.share()
        return self

    def __exit__(self, *exc) -> bool:
        self.restore()
        return False


def fork_available() -> bool:
    """Whether fork-based pools (and thus parallel runs) are usable."""
    return "fork" in multiprocessing.get_all_start_methods()


def default_workers(pending: int | None = None) -> int:
    """A sensible worker count: the CPUs this process may schedule on.

    Uses ``os.sched_getaffinity`` (not ``cpu_count``) so cgroup/taskset
    limited CI containers get the cores they can actually use, and caps
    at ``pending`` (the number of queries waiting) when given — a
    96-core box running a 4-query campaign needs 4 workers, not 96.
    """
    try:
        workers = max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # non-Linux
        workers = max(1, os.cpu_count() or 1)
    if pending is not None:
        workers = max(1, min(workers, pending))
    return workers


def dispatch_chunks(
    num_tasks: int, workers: int, chunk_size: int | None = None
) -> list[list[int]]:
    """Contiguous task-index chunks for the dispatch queue.

    ``chunk_size=None`` picks K so each worker makes ~4 queue
    round-trips over the run — large enough to amortise queue
    synchronisation, small enough that a straggler chunk cannot idle
    the rest of the pool.  Ordering is deterministic: chunks cover
    ``0..num_tasks-1`` in order (results are keyed by index, so
    workload order is preserved regardless of completion order).
    """
    if num_tasks <= 0:
        return []
    if chunk_size is None:
        chunk_size = max(1, num_tasks // (max(1, workers) * 4))
    chunk_size = max(1, chunk_size)
    return [
        list(range(start, min(start + chunk_size, num_tasks)))
        for start in range(0, num_tasks, chunk_size)
    ]


def _worker_init() -> None:
    # Tracing is process-local: spans recorded in a forked worker
    # would be lost (and cost time), so switch any inherited tracer
    # off and start from a clean metrics slate.  The event log and the
    # progress tracker are parent-side too: drop the inherited log
    # *without closing it* (the fd belongs to the parent) so the parent
    # stays the file's only writer and emits completion events from the
    # streamed worker messages instead.
    obs_trace.deactivate()
    obs_events.deactivate(close=False)
    obs_progress.deactivate()
    obs_metrics.reset()
    # Phase profiling, by contrast, *is* kept on in workers: the child
    # swaps the inherited profiler for a fresh one (tracemalloc state
    # is process-local) and ships a per-task dump with every result so
    # the parent can reassemble per-worker compute profiles.  The
    # argless activate() closes the inherited profiler *before*
    # constructing the replacement — constructing first would see the
    # inherited tracemalloc as already-tracing, decline ownership, and
    # then lose tracing entirely when the old profiler closes.
    if prof_phases.is_active():
        prof_phases.activate()


def _worker_loop(task_queue, result_pipe) -> None:
    """Worker main: claim a chunk of indices, run them, ship results.

    One queue round-trip claims a whole chunk; the ``("chunk", indices,
    pid)`` announcement followed by a per-query ``("start", index,
    pid)`` claim is sent synchronously over the pipe before each query
    runs — together they let the parent requeue the right queries when
    this process dies mid-chunk, and the start claim doubles as the
    worker's heartbeat for the live progress view.  An exception
    escaping ``_run_query`` (which already isolates ordinary per-query
    failures) is shipped as an ``("error", ...)`` message so one broken
    task cannot take the whole run down.
    """
    _worker_init()
    benchmark, estimator, queries = _FORK_STATE
    pid = os.getpid()
    while True:
        chunk = task_queue.get()
        if chunk is None:  # sentinel: run is over
            break
        result_pipe.send(("chunk", list(chunk), pid))
        for index in chunk:
            result_pipe.send(("start", index, pid))
            obs_metrics.reset()
            profiler = prof_phases.active_profiler()
            if profiler is not None:
                profiler.reset()
            try:
                run = benchmark._run_query(estimator, queries[index])
            except BaseException as exc:  # noqa: BLE001 — must reach the parent
                result_pipe.send(("error", index, f"{type(exc).__name__}: {exc}"))
            else:
                prof_dump = profiler.dump() if profiler is not None else None
                result_pipe.send(
                    ("done", index, run, obs_metrics.registry().dump(), prof_dump)
                )
    result_pipe.close()


def run_parallel(
    benchmark,
    estimator,
    queries,
    workers: int,
    *,
    on_complete=None,
    campaign_deadline=None,
    max_crash_retries: int = 1,
    chunk_size: int | None = None,
):
    """Evaluate ``queries`` with ``estimator`` across ``workers`` processes.

    Queries are dispatched in chunks of ``chunk_size`` (auto-sized by
    :func:`dispatch_chunks` when ``None``) so per-task queue overhead
    is paid once per chunk, not once per query.  Returns the list of
    ``QueryRun`` results in workload order; every worker's metrics are
    merged into the parent registry as results arrive.  The caller is
    responsible for estimator preparation (fit / preload) *before*
    this call so the forked children inherit the ready state.

    ``on_complete(position, run)`` fires in completion order for every
    query that genuinely finished (including terminal failures) — the
    benchmark's checkpoint hook.  Queries still unfinished when
    ``campaign_deadline`` expires are filled with failed ``QueryRun``s
    (not passed to ``on_complete``) so the result set stays complete
    without recording them as done.
    """
    from repro.core.benchmark import CAMPAIGN_DEADLINE_ERROR, failed_query_run

    global _FORK_STATE
    if not fork_available():
        raise RuntimeError("parallel benchmark runs require the 'fork' start method")
    queries = list(queries)
    workers = max(1, min(workers, len(queries)))
    context = multiprocessing.get_context("fork")
    registry = obs_metrics.registry()

    outcomes: dict[int, object] = {}
    claimed: dict[object, int] = {}  # reader pipe -> in-flight query index
    chunks_in_flight: dict[object, set[int]] = {}  # reader pipe -> claimed chunk
    crash_counts: dict[int, int] = {}
    processes: dict[object, object] = {}  # reader pipe -> Process

    def finish(index: int, run) -> None:
        outcomes[index] = run
        if on_complete is not None:
            on_complete(index, run)

    _FORK_STATE = (benchmark, estimator, queries)
    task_queue = context.Queue()
    shared_columns = SharedColumns(
        getattr(benchmark, "database", None), SHARE_COLUMNS_MIN_BYTES
    )
    try:
        # Pin the largest tables' columns in shared memory before any
        # fork so every worker maps one copy instead of CoW-duplicating.
        shared_columns.share()
        if shared_columns.shared_bytes:
            registry.counter("parallel.shared_column_bytes").inc(
                shared_columns.shared_bytes
            )
            obs_events.emit(
                "parallel.columns_shared",
                level="debug",
                bytes=shared_columns.shared_bytes,
                tables=list(shared_columns.shared_tables),
            )
        for chunk in dispatch_chunks(len(queries), workers, chunk_size):
            task_queue.put(chunk)

        def spawn_worker() -> None:
            reader, writer = context.Pipe(duplex=False)
            process = context.Process(
                target=_worker_loop, args=(task_queue, writer), daemon=True
            )
            process.start()
            writer.close()  # parent keeps only the reading end
            processes[reader] = process

        def reap_worker(reader) -> None:
            """Handle EOF on a worker pipe: crash recovery or cleanup.

            EOF arrives only after the pipe's buffered messages were
            drained, so a claim without a matching result means the
            worker really died mid-query.  The whole in-flight chunk is
            requeued: the query that was mid-run counts against its
            crash budget; the chunk's not-yet-started queries carry no
            blame and are simply redispatched.
            """
            process = processes.pop(reader)
            process.join()
            reader.close()
            index = claimed.pop(reader, None)
            chunk = chunks_in_flight.pop(reader, set())
            crashed_mid_query = index is not None and index not in outcomes
            if crashed_mid_query:
                registry.counter("benchmark.worker_crashes").inc()
                crash_counts[index] = crash_counts.get(index, 0) + 1
                requeued = crash_counts[index] <= max_crash_retries
                obs_events.emit(
                    "worker.crashed",
                    level="warning",
                    worker=process.pid,
                    exit_code=process.exitcode,
                    query=queries[index].query.name,
                    requeued=requeued,
                )
                if requeued:
                    task_queue.put([index])
                else:
                    finish(
                        index,
                        failed_query_run(
                            queries[index],
                            f"worker crashed {crash_counts[index]} times "
                            f"(exit code {process.exitcode})",
                        ),
                    )
                    registry.counter("benchmark.failed_queries").inc()
            unstarted = sorted(
                i for i in chunk if i != index and i not in outcomes
            )
            if unstarted:
                task_queue.put(unstarted)
            if len(outcomes) < len(queries):
                spawn_worker()

        for _ in range(workers):
            spawn_worker()

        dispatch_started = time.perf_counter()
        while len(outcomes) < len(queries):
            if campaign_deadline is not None and campaign_deadline.expired:
                break
            ready = mp_connection.wait(list(processes), timeout=_POLL_SECONDS)
            for reader in ready:
                try:
                    message = reader.recv()
                except EOFError:
                    reap_worker(reader)
                    continue
                kind = message[0]
                worker_pid = processes[reader].pid
                obs_progress.heartbeat(worker_pid)
                if kind == "chunk":
                    chunks_in_flight[reader] = set(message[1])
                elif kind == "start":
                    index = message[1]
                    claimed[reader] = index
                    obs_progress.record_claim(index, worker=worker_pid)
                    obs_events.emit(
                        "query.claimed",
                        level="debug",
                        query=queries[index].query.name,
                        worker=message[2] if len(message) > 2 else worker_pid,
                    )
                elif kind == "done":
                    _, index, run, dump, *extras = message
                    claimed.pop(reader, None)
                    chunks_in_flight.get(reader, set()).discard(index)
                    if index not in outcomes:  # requeue may rarely duplicate
                        registry.merge(dump)
                        prof_dump = extras[0] if extras else None
                        profiler = prof_phases.active_profiler()
                        if prof_dump and profiler is not None:
                            profiler.note_worker(worker_pid, prof_dump)
                        finish(index, run)
                elif kind == "error":
                    _, index, error = message
                    claimed.pop(reader, None)
                    chunks_in_flight.get(reader, set()).discard(index)
                    if index not in outcomes:
                        finish(index, failed_query_run(queries[index], error))
                        registry.counter("benchmark.failed_queries").inc()

        profiler = prof_phases.active_profiler()
        if profiler is not None:
            # Pool wall-clock × workers minus in-worker compute is the
            # dispatch/idle overhead — the number that explains a
            # slower-than-serial parallel run.
            profiler.note_parallel_section(
                time.perf_counter() - dispatch_started, workers
            )

        # Campaign deadline: fill what never finished, without
        # recording it as completed (a resume may still run it).
        for index in range(len(queries)):
            if index not in outcomes:
                outcomes[index] = failed_query_run(
                    queries[index], CAMPAIGN_DEADLINE_ERROR
                )
                registry.counter("benchmark.failed_queries").inc()
    except BaseException as exc:
        # Salvage: metrics of completed queries are already merged and
        # on_complete (checkpointing) already fired per result — make
        # the partial results reachable and the interruption loud.
        completed = [outcomes[index] for index in sorted(outcomes)]
        exc.salvaged_runs = completed
        print(
            f"[parallel run interrupted: {len(completed)}/{len(queries)} queries "
            "completed; their metrics are merged and checkpointed results are "
            "on disk]",
            file=sys.stderr,
        )
        raise
    finally:
        _FORK_STATE = None
        _shutdown(processes, task_queue)
        shared_columns.restore()
    return [outcomes[index] for index in range(len(queries))]


def _shutdown(processes, task_queue) -> None:
    """Stop workers without hanging the parent.

    Live workers get one sentinel each and a grace period; stragglers
    (e.g. still executing a requeued task) are terminated.  The task
    queue's feeder thread is cancelled so unread items never block
    parent exit.
    """
    try:
        for _ in processes:
            task_queue.put(None)
    except (OSError, ValueError):
        pass  # queue already unusable; terminate below
    for process in processes.values():
        process.join(timeout=_JOIN_SECONDS)
    for process in processes.values():
        if process.is_alive():
            process.terminate()
            process.join(timeout=_JOIN_SECONDS)
    for reader in processes:
        reader.close()
    task_queue.close()
    task_queue.cancel_join_thread()
