"""The end-to-end benchmark driver (the paper's Section 4.2 platform).

For every workload query and estimator:

1. derive the sub-plan query space and collect the estimator's
   cardinality for each sub-plan (*inference time*),
2. inject the estimates into the DP planner and plan (*planning
   time*),
3. execute the chosen physical plan (*execution time*), and
4. compute Q-Errors (per sub-plan) and the P-Error of the plan.

Executions whose intermediate results blow past the row budget are
recorded as aborted — the analog of the paper's "> 25h" entries — and
aggregate reports either flag them or substitute a penalty time.

Campaigns are **fault tolerant** (:mod:`repro.resilience`): an
estimator exception, a planner error or an executor crash is isolated
to its query — recorded as ``QueryRun(failed=True, error=...)`` with
PostgreSQL-default estimates injected for failed sub-plans — instead
of aborting the campaign.  ``failed`` and ``aborted`` are distinct
outcomes: *aborted* means the chosen plan blew its row/time budget
(an estimator-quality signal the paper reports); *failed* means the
machinery around the query broke (an infrastructure signal the paper's
aggregates must exclude).  A retry/timeout policy applies to
inference, planning and execution, and completed runs can stream to a
:class:`~repro.resilience.checkpoint.CampaignCheckpoint` so an
interrupted campaign resumes where it stopped.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field

from repro.core.metrics import p_error, q_error
from repro.core.parallel import fork_available, run_parallel
from repro.engine.cache import ExecutionContext
from repro.engine.cost import MissingCardinalityError
from repro.engine.database import Database
from repro.engine.executor import ExecutionAborted, Executor
from repro.engine.planner import Planner
from repro.engine.plans import join_order_signature, plan_methods
from repro.engine.query import LabeledQuery
from repro.estimators.base import CardinalityEstimator
from repro.estimators.truecard import TrueCardEstimator
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.obs import progress as obs_progress
from repro.obs import trace as obs_trace
from repro.obs.prof import phases as prof_phases
from repro.resilience.fallback import PostgresDefaultFallback
from repro.resilience.policy import (
    Deadline,
    RetryPolicy,
    TimeoutPolicy,
    call_with_retry,
)
from repro.workloads.generator import Workload


@dataclass
class QueryRun:
    """Measurements for one (estimator, query) pair."""

    query_name: str
    num_tables: int
    inference_seconds: float
    planning_seconds: float
    execution_seconds: float
    aborted: bool
    result_cardinality: int
    p_error: float
    q_errors: list[float] = field(default_factory=list)
    join_order: tuple = ()
    methods: list[str] = field(default_factory=list)
    #: Span id of this query's root trace span, when the run was traced.
    trace_id: str | None = None
    #: True when infrastructure around the query broke (estimator
    #: exception, planner error, executor crash, expired campaign
    #: deadline) — distinct from ``aborted``, which is the plan blowing
    #: its row/time budget.  A failed query never counts as aborted and
    #: vice versa.
    failed: bool = False
    #: Final error text when ``failed`` (None otherwise).
    error: str | None = None
    #: Highest attempt count any phase of this query needed under the
    #: retry policy (1 = everything succeeded first try).
    attempts: int = 1
    #: Sub-plan estimates served by the PostgreSQL-default fallback
    #: because the estimator failed on them.
    fallback_estimates: int = 0

    @property
    def end_to_end_seconds(self) -> float:
        return self.inference_seconds + self.planning_seconds + self.execution_seconds


@dataclass
class EstimatorRun:
    """All query runs of one estimator over one workload."""

    estimator_name: str
    workload_name: str
    query_runs: list[QueryRun] = field(default_factory=list)

    @property
    def aborted_count(self) -> int:
        return sum(1 for run in self.query_runs if run.aborted)

    @property
    def failed_count(self) -> int:
        """Queries lost to infrastructure failures (never aborts)."""
        return sum(1 for run in self.query_runs if run.failed)

    def total_execution_seconds(self, penalty: dict[str, float] | None = None) -> float:
        """Sum of execution times; aborted runs take their penalty."""
        total = 0.0
        for run in self.query_runs:
            if run.aborted and penalty is not None:
                total += penalty.get(run.query_name, run.execution_seconds)
            else:
                total += run.execution_seconds
        return total

    def total_inference_seconds(self) -> float:
        """Sum of estimator inference times only."""
        return sum(r.inference_seconds for r in self.query_runs)

    def total_planning_seconds(self) -> float:
        """Sum of DP planning times only (inference excluded).

        Before the observability split this accessor silently folded
        inference time in; use :meth:`total_inference_seconds` for that
        component, or the deprecated
        :meth:`total_optimization_seconds` for the old combined value.
        """
        return sum(r.planning_seconds for r in self.query_runs)

    def total_optimization_seconds(self) -> float:
        """Deprecated combined inference + planning time."""
        warnings.warn(
            "total_optimization_seconds() is deprecated; use "
            "total_inference_seconds() + total_planning_seconds()",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.total_inference_seconds() + self.total_planning_seconds()

    def total_end_to_end_seconds(self, penalty: dict[str, float] | None = None) -> float:
        return (
            self.total_execution_seconds(penalty)
            + self.total_inference_seconds()
            + self.total_planning_seconds()
        )

    def all_q_errors(self) -> list[float]:
        return [q for run in self.query_runs for q in run.q_errors]

    def all_p_errors(self) -> list[float]:
        return [run.p_error for run in self.query_runs]


#: Error text recorded on queries that could not start before the
#: campaign deadline expired.  Such runs are *not* checkpointed, so a
#: later ``--resume`` still gets to complete them.
CAMPAIGN_DEADLINE_ERROR = "campaign deadline exceeded"


def _campaign_deadline_run(labeled: LabeledQuery) -> QueryRun:
    return failed_query_run(labeled, CAMPAIGN_DEADLINE_ERROR)


def failed_query_run(labeled: LabeledQuery, error: str) -> QueryRun:
    """A synthetic failed run for a query that never produced a result.

    Used for campaign-deadline skips and for queries whose worker
    crashed past the requeue budget — the result set stays complete
    (one QueryRun per query) with the loss recorded instead of silent.
    """
    return QueryRun(
        query_name=labeled.query.name,
        num_tables=labeled.query.num_tables,
        inference_seconds=0.0,
        planning_seconds=0.0,
        execution_seconds=0.0,
        aborted=False,
        result_cardinality=-1,
        p_error=float("nan"),
        failed=True,
        error=error,
    )


def _deadline_skip(run: QueryRun) -> bool:
    return run.failed and run.error == CAMPAIGN_DEADLINE_ERROR


def abort_penalties(
    baseline: EstimatorRun,
    factor: float = 10.0,
    floor_seconds: float = 1.0,
) -> dict[str, float]:
    """Per-query penalty times for aborted executions.

    An aborted execution is 'too slow to finish'; we charge ``factor``
    times the baseline (TrueCard) execution time of the same query —
    conservative relative to the paper, where such queries simply time
    out the whole workload run.
    """
    return {
        run.query_name: max(run.execution_seconds * factor, floor_seconds)
        for run in baseline.query_runs
    }


class EndToEndBenchmark:
    """Runs estimators through plan-inject-execute on a workload."""

    def __init__(
        self,
        database: Database,
        workload: Workload,
        max_intermediate_rows: int = 20_000_000,
        timeout_seconds: float | None = 120.0,
        compute_q_errors: bool = True,
        compute_p_errors: bool = True,
        repetitions: int = 1,
        workers: int = 1,
        use_exec_cache: bool = False,
        retry_policy: RetryPolicy | None = None,
        timeout_policy: TimeoutPolicy | None = None,
        max_crash_retries: int = 1,
    ):
        self._database = database
        self.workload = workload
        self._planner = Planner(database)
        #: Retry/timeout policy.  ``retry_policy=None`` (default) means
        #: single attempts; ``timeout_policy`` defaults to the legacy
        #: single execution timeout, keeping no-fault serial runs
        #: byte-identical to the historical behaviour.
        self._retry_policy = retry_policy
        self._timeout_policy = timeout_policy or TimeoutPolicy(
            execution_seconds=timeout_seconds
        )
        self._fallback = PostgresDefaultFallback(database)
        #: How many times a query lost to a *worker crash* is requeued
        #: in parallel runs before being recorded as failed.
        self._max_crash_retries = max(0, max_crash_retries)
        # Measurement-fidelity policy: timed executions pay the real
        # cost of every scan and hash build, so the benchmark executor
        # runs without result-reuse caches unless explicitly opted in
        # (``use_exec_cache=True`` — appropriate only for
        # correctness-focused campaigns, e.g. Q-/P-Error sweeps where
        # wall times are not reported).
        self._context = ExecutionContext(database) if use_exec_cache else None
        self._executor = Executor(
            database,
            max_intermediate_rows=max_intermediate_rows,
            timeout_seconds=timeout_seconds,
            context=self._context,
        )
        self._compute_q = compute_q_errors
        self._compute_p = compute_p_errors
        #: execute each plan this many times and keep the fastest run —
        #: suppresses cache/warm-up noise when comparing close methods.
        self._repetitions = max(1, repetitions)
        self._workers = max(1, workers)

    @property
    def database(self) -> Database:
        return self._database

    @property
    def planner(self) -> Planner:
        return self._planner

    @property
    def context(self) -> ExecutionContext | None:
        """The timed executor's cache context (None under default policy)."""
        return self._context

    @property
    def workers(self) -> int:
        return self._workers

    def run(
        self,
        estimator: CardinalityEstimator,
        queries: list[LabeledQuery] | None = None,
        workers: int | None = None,
        checkpoint=None,
    ) -> EstimatorRun:
        """Benchmark ``estimator`` over the workload (or a subset).

        With ``workers > 1`` (here or in the constructor) the
        (estimator, query) pairs are fanned across a fork-based process
        pool; results are returned in workload order and per-worker
        metrics are merged into the parent registry.  Estimator
        preparation happens before the fork so children inherit the
        ready state.  Falls back to the serial loop when forking is
        unavailable.

        ``checkpoint`` (a
        :class:`~repro.resilience.checkpoint.CampaignCheckpoint`)
        streams every completed QueryRun to disk as it finishes and
        splices previously-recorded (estimator, query) pairs into the
        result instead of re-running them — pass a checkpoint opened
        with ``CampaignCheckpoint.resume`` to continue an interrupted
        campaign.  Queries skipped because the campaign deadline
        expired are recorded as ``failed`` but *not* checkpointed, so a
        later resume can still complete them.
        """
        if isinstance(estimator, TrueCardEstimator):
            for labeled in self.workload.queries:
                estimator.preload_labeled(labeled)
        # Materialize the outcome counters so metric snapshots always
        # carry them, even for campaigns with zero aborts/failures.
        obs_metrics.registry().counter("benchmark.aborted_queries")
        obs_metrics.registry().counter("benchmark.failed_queries")
        result = EstimatorRun(
            estimator_name=estimator.name,
            workload_name=self.workload.name,
        )
        run_queries = list(queries if queries is not None else self.workload.queries)
        workers = self._workers if workers is None else max(1, workers)
        campaign_deadline = Deadline.after(self._timeout_policy.campaign_seconds)

        slots: list[QueryRun | None] = [None] * len(run_queries)
        fresh: list[tuple[int, LabeledQuery]] = []
        for index, labeled in enumerate(run_queries):
            prior = (
                checkpoint.get(estimator.name, labeled.query.name)
                if checkpoint is not None
                else None
            )
            if prior is not None:
                slots[index] = prior
            else:
                fresh.append((index, labeled))

        obs_progress.begin_campaign(
            total=len(run_queries),
            estimator=estimator.name,
            workload=self.workload.name,
        )
        with obs_events.context(
            estimator=estimator.name, workload=self.workload.name
        ):
            obs_events.emit(
                "campaign.begin",
                total=len(run_queries),
                resumed=len(run_queries) - len(fresh),
                workers=workers,
            )
            # Checkpoint-spliced pairs count toward live progress so a
            # resumed campaign's view starts where the last one stopped.
            for index, run in enumerate(slots):
                if run is not None:
                    obs_progress.record_result(run, index=index)

            def complete(index: int, labeled: LabeledQuery, run: QueryRun) -> None:
                slots[index] = run
                if checkpoint is not None and not _deadline_skip(run):
                    checkpoint.append(estimator.name, run)
                obs_progress.record_result(run, index=index)
                obs_events.emit(
                    "query.completed",
                    level="warning" if run.failed else "info",
                    query=run.query_name,
                    failed=run.failed,
                    aborted=run.aborted,
                    seconds=round(run.end_to_end_seconds, 6),
                    attempts=run.attempts,
                    error=run.error,
                )

            if workers > 1 and len(fresh) > 1 and fork_available():
                fresh_queries = [labeled for _, labeled in fresh]
                runs = run_parallel(
                    self,
                    estimator,
                    fresh_queries,
                    workers,
                    campaign_deadline=campaign_deadline,
                    max_crash_retries=self._max_crash_retries,
                    on_complete=lambda position, run: complete(
                        fresh[position][0], fresh[position][1], run
                    ),
                )
                for (index, labeled), run in zip(fresh, runs):
                    if slots[index] is None:
                        slots[index] = run
            else:
                for index, labeled in fresh:
                    if campaign_deadline.expired:
                        run = _campaign_deadline_run(labeled)
                        obs_metrics.registry().counter(
                            "benchmark.failed_queries"
                        ).inc()
                    else:
                        run = self._run_query(estimator, labeled, campaign_deadline)
                    complete(index, labeled, run)
            result.query_runs.extend(slots)
            obs_events.emit(
                "campaign.end",
                total=len(run_queries),
                failed=result.failed_count,
                aborted=result.aborted_count,
            )
        obs_progress.end_campaign()
        return result

    def _run_query(
        self,
        estimator: CardinalityEstimator,
        labeled: LabeledQuery,
        campaign_deadline: Deadline | None = None,
    ) -> QueryRun:
        """Run one (estimator, query) pair with per-phase failure isolation.

        An exception in inference, planning, P-Error costing or
        execution marks the run ``failed`` (with the error recorded)
        instead of propagating; ``ExecutionAborted`` keeps its distinct
        ``aborted`` meaning.  Only ``BaseException``s that are not
        ``Exception``s (KeyboardInterrupt, SystemExit, a dying worker)
        escape — those legitimately end the campaign, and the
        checkpoint/parallel layers handle them.
        """
        # Imported lazily: the inference module imports estimator
        # machinery whose package initialization reaches back into this
        # module, so a top-level import would close a cycle.
        from repro.resilience.inference import resilient_sub_plan_estimates

        query = labeled.query
        true_cards = {
            subset: float(count)
            for subset, count in labeled.sub_plan_true_cards.items()
        }
        retry = self._retry_policy
        policy = self._timeout_policy
        deadline = Deadline.earliest(
            Deadline.after(policy.per_query_seconds), campaign_deadline
        )
        registry = obs_metrics.registry()
        failed = False
        errors: list[str] = []
        attempts = 1

        with obs_trace.span(
            "query", name=query.name, estimator=estimator.name
        ) as query_span, obs_events.context(query=query.name):
            trace_id = getattr(query_span, "span_id", None)
            obs_events.emit("query.start", num_tables=query.num_tables)

            # The ``inference`` child span is opened inside the
            # resilient estimation pass, next to the per-sub-plan
            # latency histogram; on the no-fault path the estimates are
            # identical to the historical estimate_sub_plans loop.
            started = time.perf_counter()
            with prof_phases.phase("inference", estimator=estimator.name):
                inference = resilient_sub_plan_estimates(
                    estimator,
                    query,
                    fallback=self._fallback,
                    retry=retry,
                    deadline=deadline,
                )
            inference_seconds = time.perf_counter() - started
            estimates = inference.cards
            attempts = max(attempts, inference.max_attempts)
            if inference.failed:
                failed = True
                errors.append(inference.error_summary())

            started = time.perf_counter()
            planned = None
            with obs_trace.span("planning", query=query.name), prof_phases.phase(
                "planning", estimator=estimator.name
            ):
                try:
                    planned, planning_attempts = call_with_retry(
                        lambda: self._planner.plan(query, estimates),
                        retry,
                        deadline=deadline,
                        # A cards map missing a connected sub-plan is
                        # deterministic — replanning can only fail the
                        # same way, so fall through to fallback at once.
                        non_retryable=(MissingCardinalityError,),
                        on_retry=lambda *_: registry.counter(
                            "resilience.planning_retries"
                        ).inc(),
                    )
                    attempts = max(attempts, planning_attempts)
                except Exception as exc:
                    failed = True
                    attempts = max(attempts, getattr(exc, "attempts", 1))
                    errors.append(f"planning failed: {type(exc).__name__}: {exc}")
            planning_seconds = time.perf_counter() - started

            q_errors = []
            if self._compute_q:
                q_errors = [
                    q_error(estimates[subset], true_cards[subset])
                    for subset in estimates
                ]
            perr = float("nan")
            if self._compute_p and planned is not None:
                try:
                    perr = p_error(self._planner, query, estimates, true_cards)
                except Exception as exc:
                    failed = True
                    errors.append(f"p_error failed: {type(exc).__name__}: {exc}")

            aborted = False
            cardinality = -1
            execution_seconds = 0.0
            if planned is not None:
                attempt_started = time.perf_counter()

                def execute_once():
                    # Reset per-attempt so an abort (or failure) is
                    # charged its own elapsed time, not the wall time
                    # since the first attempt started.
                    nonlocal attempt_started
                    attempt_started = time.perf_counter()
                    budget = deadline.tightest(None)
                    if budget is None:
                        # No per-query/per-campaign deadline: the
                        # executor's own timeout applies, on the exact
                        # historical call path.
                        return self._executor.execute(planned.plan)
                    if policy.execution_seconds is not None:
                        budget = min(budget, policy.execution_seconds)
                    return self._executor.execute(
                        planned.plan, timeout_seconds=budget
                    )

                with obs_trace.span(
                    "execution", query=query.name
                ) as execution_span, prof_phases.phase(
                    "execution", estimator=estimator.name
                ):
                    try:
                        execution, execution_attempts = call_with_retry(
                            execute_once,
                            retry,
                            non_retryable=(ExecutionAborted,),
                            deadline=deadline,
                            on_retry=lambda *_: registry.counter(
                                "resilience.execution_retries"
                            ).inc(),
                        )
                        attempts = max(attempts, execution_attempts)
                        execution_seconds = execution.elapsed_seconds
                        cardinality = execution.cardinality
                        for _ in range(self._repetitions - 1):
                            execution, execution_attempts = call_with_retry(
                                execute_once,
                                retry,
                                non_retryable=(ExecutionAborted,),
                                deadline=deadline,
                            )
                            attempts = max(attempts, execution_attempts)
                            execution_seconds = min(
                                execution_seconds, execution.elapsed_seconds
                            )
                        execution_span.set(rows=cardinality)
                    except ExecutionAborted:
                        # The paper's "> 25h" outcome: the plan blew its
                        # row/time budget.  Flag the query aborted even
                        # if an earlier repetition completed.
                        aborted = True
                        execution_seconds = time.perf_counter() - attempt_started
                        execution_span.set(aborted=True)
                        registry.counter("benchmark.aborted_queries").inc()
                    except Exception as exc:
                        failed = True
                        attempts = max(attempts, getattr(exc, "attempts", 1))
                        execution_seconds = time.perf_counter() - attempt_started
                        cardinality = -1
                        errors.append(
                            f"execution failed: {type(exc).__name__}: {exc}"
                        )
                        execution_span.set(failed=True)

            if failed:
                registry.counter("benchmark.failed_queries").inc()
                query_span.set(failed=True)

        return QueryRun(
            query_name=query.name,
            num_tables=query.num_tables,
            inference_seconds=inference_seconds,
            planning_seconds=planning_seconds,
            execution_seconds=execution_seconds,
            aborted=aborted,
            result_cardinality=cardinality,
            p_error=perr,
            q_errors=q_errors,
            join_order=join_order_signature(planned.plan) if planned else (),
            methods=plan_methods(planned.plan) if planned else [],
            trace_id=trace_id,
            failed=failed,
            error="; ".join(errors) if errors else None,
            attempts=attempts,
            fallback_estimates=inference.fallback_count,
        )
