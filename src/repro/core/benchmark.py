"""The end-to-end benchmark driver (the paper's Section 4.2 platform).

For every workload query and estimator:

1. derive the sub-plan query space and collect the estimator's
   cardinality for each sub-plan (*inference time*),
2. inject the estimates into the DP planner and plan (*planning
   time*),
3. execute the chosen physical plan (*execution time*), and
4. compute Q-Errors (per sub-plan) and the P-Error of the plan.

Executions whose intermediate results blow past the row budget are
recorded as aborted — the analog of the paper's "> 25h" entries — and
aggregate reports either flag them or substitute a penalty time.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field

from repro.core.injection import estimate_sub_plans
from repro.core.metrics import p_error, q_error
from repro.core.parallel import fork_available, run_parallel
from repro.engine.cache import ExecutionContext
from repro.engine.database import Database
from repro.engine.executor import ExecutionAborted, Executor
from repro.engine.planner import Planner
from repro.engine.plans import join_order_signature, plan_methods
from repro.engine.query import LabeledQuery
from repro.estimators.base import CardinalityEstimator
from repro.estimators.truecard import TrueCardEstimator
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.workloads.generator import Workload


@dataclass
class QueryRun:
    """Measurements for one (estimator, query) pair."""

    query_name: str
    num_tables: int
    inference_seconds: float
    planning_seconds: float
    execution_seconds: float
    aborted: bool
    result_cardinality: int
    p_error: float
    q_errors: list[float] = field(default_factory=list)
    join_order: tuple = ()
    methods: list[str] = field(default_factory=list)
    #: Span id of this query's root trace span, when the run was traced.
    trace_id: str | None = None

    @property
    def end_to_end_seconds(self) -> float:
        return self.inference_seconds + self.planning_seconds + self.execution_seconds


@dataclass
class EstimatorRun:
    """All query runs of one estimator over one workload."""

    estimator_name: str
    workload_name: str
    query_runs: list[QueryRun] = field(default_factory=list)

    @property
    def aborted_count(self) -> int:
        return sum(1 for run in self.query_runs if run.aborted)

    def total_execution_seconds(self, penalty: dict[str, float] | None = None) -> float:
        """Sum of execution times; aborted runs take their penalty."""
        total = 0.0
        for run in self.query_runs:
            if run.aborted and penalty is not None:
                total += penalty.get(run.query_name, run.execution_seconds)
            else:
                total += run.execution_seconds
        return total

    def total_inference_seconds(self) -> float:
        """Sum of estimator inference times only."""
        return sum(r.inference_seconds for r in self.query_runs)

    def total_planning_seconds(self) -> float:
        """Sum of DP planning times only (inference excluded).

        Before the observability split this accessor silently folded
        inference time in; use :meth:`total_inference_seconds` for that
        component, or the deprecated
        :meth:`total_optimization_seconds` for the old combined value.
        """
        return sum(r.planning_seconds for r in self.query_runs)

    def total_optimization_seconds(self) -> float:
        """Deprecated combined inference + planning time."""
        warnings.warn(
            "total_optimization_seconds() is deprecated; use "
            "total_inference_seconds() + total_planning_seconds()",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.total_inference_seconds() + self.total_planning_seconds()

    def total_end_to_end_seconds(self, penalty: dict[str, float] | None = None) -> float:
        return (
            self.total_execution_seconds(penalty)
            + self.total_inference_seconds()
            + self.total_planning_seconds()
        )

    def all_q_errors(self) -> list[float]:
        return [q for run in self.query_runs for q in run.q_errors]

    def all_p_errors(self) -> list[float]:
        return [run.p_error for run in self.query_runs]


def abort_penalties(
    baseline: EstimatorRun,
    factor: float = 10.0,
    floor_seconds: float = 1.0,
) -> dict[str, float]:
    """Per-query penalty times for aborted executions.

    An aborted execution is 'too slow to finish'; we charge ``factor``
    times the baseline (TrueCard) execution time of the same query —
    conservative relative to the paper, where such queries simply time
    out the whole workload run.
    """
    return {
        run.query_name: max(run.execution_seconds * factor, floor_seconds)
        for run in baseline.query_runs
    }


class EndToEndBenchmark:
    """Runs estimators through plan-inject-execute on a workload."""

    def __init__(
        self,
        database: Database,
        workload: Workload,
        max_intermediate_rows: int = 20_000_000,
        timeout_seconds: float | None = 120.0,
        compute_q_errors: bool = True,
        compute_p_errors: bool = True,
        repetitions: int = 1,
        workers: int = 1,
        use_exec_cache: bool = False,
    ):
        self._database = database
        self.workload = workload
        self._planner = Planner(database)
        # Measurement-fidelity policy: timed executions pay the real
        # cost of every scan and hash build, so the benchmark executor
        # runs without result-reuse caches unless explicitly opted in
        # (``use_exec_cache=True`` — appropriate only for
        # correctness-focused campaigns, e.g. Q-/P-Error sweeps where
        # wall times are not reported).
        self._context = ExecutionContext(database) if use_exec_cache else None
        self._executor = Executor(
            database,
            max_intermediate_rows=max_intermediate_rows,
            timeout_seconds=timeout_seconds,
            context=self._context,
        )
        self._compute_q = compute_q_errors
        self._compute_p = compute_p_errors
        #: execute each plan this many times and keep the fastest run —
        #: suppresses cache/warm-up noise when comparing close methods.
        self._repetitions = max(1, repetitions)
        self._workers = max(1, workers)

    @property
    def planner(self) -> Planner:
        return self._planner

    @property
    def context(self) -> ExecutionContext | None:
        """The timed executor's cache context (None under default policy)."""
        return self._context

    @property
    def workers(self) -> int:
        return self._workers

    def run(
        self,
        estimator: CardinalityEstimator,
        queries: list[LabeledQuery] | None = None,
        workers: int | None = None,
    ) -> EstimatorRun:
        """Benchmark ``estimator`` over the workload (or a subset).

        With ``workers > 1`` (here or in the constructor) the
        (estimator, query) pairs are fanned across a fork-based process
        pool; results are returned in workload order and per-worker
        metrics are merged into the parent registry.  Estimator
        preparation happens before the fork so children inherit the
        ready state.  Falls back to the serial loop when forking is
        unavailable.
        """
        if isinstance(estimator, TrueCardEstimator):
            for labeled in self.workload.queries:
                estimator.preload_labeled(labeled)
        # Materialize the abort counter so metric snapshots always
        # carry it, even for campaigns with zero aborts.
        obs_metrics.registry().counter("benchmark.aborted_queries")
        result = EstimatorRun(
            estimator_name=estimator.name,
            workload_name=self.workload.name,
        )
        run_queries = list(queries if queries is not None else self.workload.queries)
        workers = self._workers if workers is None else max(1, workers)
        if workers > 1 and len(run_queries) > 1 and fork_available():
            result.query_runs.extend(
                run_parallel(self, estimator, run_queries, workers)
            )
        else:
            for labeled in run_queries:
                result.query_runs.append(self._run_query(estimator, labeled))
        return result

    def _run_query(
        self,
        estimator: CardinalityEstimator,
        labeled: LabeledQuery,
    ) -> QueryRun:
        query = labeled.query
        true_cards = {
            subset: float(count)
            for subset, count in labeled.sub_plan_true_cards.items()
        }

        with obs_trace.span(
            "query", name=query.name, estimator=estimator.name
        ) as query_span:
            trace_id = getattr(query_span, "span_id", None)

            # The ``inference`` child span is opened inside
            # estimate_sub_plans, next to the per-sub-plan latency
            # histogram.
            started = time.perf_counter()
            estimates = estimate_sub_plans(estimator, query)
            inference_seconds = time.perf_counter() - started

            started = time.perf_counter()
            with obs_trace.span("planning", query=query.name):
                planned = self._planner.plan(query, estimates)
            planning_seconds = time.perf_counter() - started

            q_errors = []
            if self._compute_q:
                q_errors = [
                    q_error(estimates[subset], true_cards[subset])
                    for subset in estimates
                ]
            perr = (
                p_error(self._planner, query, estimates, true_cards)
                if self._compute_p
                else float("nan")
            )

            aborted = False
            cardinality = -1
            attempt_started = time.perf_counter()
            with obs_trace.span("execution", query=query.name) as execution_span:
                try:
                    execution = self._executor.execute(planned.plan)
                    execution_seconds = execution.elapsed_seconds
                    cardinality = execution.cardinality
                    for _ in range(self._repetitions - 1):
                        attempt_started = time.perf_counter()
                        execution = self._executor.execute(planned.plan)
                        execution_seconds = min(
                            execution_seconds, execution.elapsed_seconds
                        )
                    execution_span.set(rows=cardinality)
                except ExecutionAborted:
                    # Charge the aborted attempt its own elapsed time —
                    # not the wall time since the first repetition
                    # started — and flag the query aborted even if an
                    # earlier repetition completed.
                    aborted = True
                    execution_seconds = time.perf_counter() - attempt_started
                    execution_span.set(aborted=True)
                    obs_metrics.registry().counter("benchmark.aborted_queries").inc()

        return QueryRun(
            query_name=query.name,
            num_tables=query.num_tables,
            inference_seconds=inference_seconds,
            planning_seconds=planning_seconds,
            execution_seconds=execution_seconds,
            aborted=aborted,
            result_cardinality=cardinality,
            p_error=perr,
            q_errors=q_errors,
            join_order=join_order_signature(planned.plan),
            methods=plan_methods(planned.plan),
            trace_id=trace_id,
        )
