"""OLTP/OLAP workload split (Table 5 of the paper).

The paper divides STATS-CEB by query execution time into a TP
(short-running) and an AP (long-running) workload to show that
estimator inference latency dominates end-to-end time on TP queries
and is negligible on AP queries (observation O7).  The split here is
by the baseline (TrueCard) execution time of each query against a
quantile threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.benchmark import EstimatorRun


@dataclass(frozen=True)
class SplitTimes:
    """Per-workload-half timing aggregate for one estimator."""

    estimator_name: str
    tp_execution_seconds: float
    tp_planning_seconds: float
    ap_execution_seconds: float
    ap_planning_seconds: float
    tp_aborted: int
    ap_aborted: int

    @property
    def tp_planning_share(self) -> float:
        total = self.tp_execution_seconds + self.tp_planning_seconds
        return self.tp_planning_seconds / total if total else 0.0

    @property
    def ap_planning_share(self) -> float:
        total = self.ap_execution_seconds + self.ap_planning_seconds
        return self.ap_planning_seconds / total if total else 0.0


def split_query_names(
    baseline: EstimatorRun,
    quantile: float = 0.75,
) -> tuple[set[str], set[str]]:
    """Partition queries into (TP, AP) by baseline execution time."""
    times = [run.execution_seconds for run in baseline.query_runs]
    threshold = float(np.quantile(times, quantile)) if times else 0.0
    tp, ap = set(), set()
    for run in baseline.query_runs:
        (tp if run.execution_seconds <= threshold else ap).add(run.query_name)
    return tp, ap


def split_times(
    run: EstimatorRun,
    tp_names: set[str],
    penalty: dict[str, float] | None = None,
) -> SplitTimes:
    """Aggregate one estimator's run into the TP/AP halves."""
    tp_exec = ap_exec = tp_plan = ap_plan = 0.0
    tp_aborted = ap_aborted = 0
    for query_run in run.query_runs:
        execution = query_run.execution_seconds
        if query_run.aborted and penalty is not None:
            execution = penalty.get(query_run.query_name, execution)
        planning = query_run.inference_seconds + query_run.planning_seconds
        if query_run.query_name in tp_names:
            tp_exec += execution
            tp_plan += planning
            tp_aborted += int(query_run.aborted)
        else:
            ap_exec += execution
            ap_plan += planning
            ap_aborted += int(query_run.aborted)
    return SplitTimes(
        estimator_name=run.estimator_name,
        tp_execution_seconds=tp_exec,
        tp_planning_seconds=tp_plan,
        ap_execution_seconds=ap_exec,
        ap_planning_seconds=ap_plan,
        tp_aborted=tp_aborted,
        ap_aborted=ap_aborted,
    )
