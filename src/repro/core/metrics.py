"""CardEst quality metrics: Q-Error and the paper's proposed P-Error.

Q-Error (Moerkotte et al.) measures per-(sub-plan-)query relative
error; Section 7 of the paper shows it cannot rank estimators by the
query plans they produce.  P-Error fixes this by costing the plan an
estimator *actually* induces under the true cardinalities:

    P-Error = PPC(P(C_est), C_true) / PPC(P(C_true), C_true)

where ``P(C)`` is the plan the optimizer picks when fed cardinalities
``C`` and ``PPC`` is the cost model's estimate of a plan's cost under
the injected cardinalities — our engine's analog of the PostgreSQL
plan cost the paper computes through ``pg_hint_plan``.
"""

from __future__ import annotations

import numpy as np

from repro.engine.planner import Planner
from repro.engine.query import Query


def q_error(estimate: float, true_cardinality: float) -> float:
    """max(est/true, true/est), both clamped to >= 1 row.

    **Documented divergence from raw ratios** (verified by the
    differential oracle in :mod:`repro.check`): the engine and the
    SQLite reference both report a *raw* count of 0 for empty results,
    but this metric clamps both operands to one row, so a true
    cardinality of 0 yields ``q_error(est, 0) == max(est, 1)`` rather
    than an infinite/undefined ratio.  This matches the paper's (and
    PostgreSQL's) convention of treating relations as never smaller
    than one row, and keeps percentile aggregates finite.
    """
    estimate = max(float(estimate), 1.0)
    true_cardinality = max(float(true_cardinality), 1.0)
    return max(estimate / true_cardinality, true_cardinality / estimate)


def p_error(
    planner: Planner,
    query: Query,
    estimated_cards: dict[frozenset[str], float],
    true_cards: dict[frozenset[str], float],
) -> float:
    """P-Error of one query given full sub-plan cardinality maps."""
    estimated_plan = planner.plan(query, estimated_cards).plan
    true_plan = planner.plan(query, true_cards).plan
    cost_of_estimated = planner.cost_model.plan_cost(estimated_plan, true_cards)
    cost_of_true = planner.cost_model.plan_cost(true_plan, true_cards)
    # P-Error >= 1 by construction: the true-cardinality plan is
    # PPC-optimal over the same sub-plan space, so the estimator-induced
    # plan can never genuinely cost less under the true cardinalities.
    # Ratios below 1 are cost-model tie-breaking / floating-point
    # artifacts; left unclamped they skew percentile aggregates.
    return max(cost_of_estimated / max(cost_of_true, 1e-12), 1.0)


def percentiles(
    values: list[float],
    points: tuple[int, ...] = (50, 90, 99),
) -> dict[int, float]:
    """Selected percentiles of a metric distribution."""
    if not values:
        return {p: float("nan") for p in points}
    array = np.asarray(values, dtype=np.float64)
    return {p: float(np.percentile(array, p)) for p in points}


def rank_correlation(x: list[float], y: list[float]) -> float:
    """Spearman rank correlation between two metric series.

    Used for the paper's O14: P-Error percentiles correlate with
    execution time far better than Q-Error percentiles do.
    """
    if len(x) != len(y) or len(x) < 3:
        return float("nan")
    if np.ptp(x) == 0 or np.ptp(y) == 0:
        return float("nan")
    from scipy import stats as scipy_stats

    result = scipy_stats.spearmanr(x, y)
    # scipy >= 1.9 returns a SignificanceResult with ``.statistic``;
    # older versions return a SpearmanrResult exposing ``.correlation``.
    statistic = getattr(result, "statistic", None)
    if statistic is None:
        statistic = result.correlation
    return float(statistic)
