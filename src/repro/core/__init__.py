"""The paper's contribution: the end-to-end CardEst evaluation platform.

- :mod:`repro.core.injection` — sub-plan query space derivation and
  cardinality injection (the ``calc_joinrel_size_estimate`` overwrite).
- :mod:`repro.core.truecards` — exact sub-plan cardinalities (TrueCard).
- :mod:`repro.core.metrics` — Q-Error and the proposed P-Error.
- :mod:`repro.core.benchmark` — end-to-end benchmark driver.
- :mod:`repro.core.workload_split` — OLTP/OLAP split (Table 5).
- :mod:`repro.core.update_bench` — dynamic-data experiment (Table 6).
- :mod:`repro.core.report` — plain-text table rendering.
"""

from repro.core.benchmark import (
    EndToEndBenchmark,
    EstimatorRun,
    QueryRun,
    abort_penalties,
)
from repro.core.injection import estimate_sub_plans, sub_plan_queries, sub_plan_sets
from repro.core.metrics import p_error, percentiles, q_error, rank_correlation
from repro.core.truecards import TrueCardinalityService
from repro.core.tuning import TuningResult, grid_search, score_estimator
from repro.core.update_bench import UpdateResult, run_update_experiment
from repro.core.workload_split import SplitTimes, split_query_names, split_times

__all__ = [
    "EndToEndBenchmark",
    "EstimatorRun",
    "QueryRun",
    "SplitTimes",
    "TrueCardinalityService",
    "TuningResult",
    "UpdateResult",
    "abort_penalties",
    "estimate_sub_plans",
    "p_error",
    "percentiles",
    "q_error",
    "rank_correlation",
    "run_update_experiment",
    "grid_search",
    "score_estimator",
    "split_query_names",
    "split_times",
    "sub_plan_queries",
    "sub_plan_sets",
]
