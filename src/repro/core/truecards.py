"""Exact cardinalities for queries and their sub-plan spaces.

``TrueCardinalityService`` is the workhorse behind the ``TrueCard``
baseline, workload labelling, Q-Error denominators and the true-card
term of P-Error.  Sub-plan cardinalities are computed bottom-up, and —
unlike the seed implementation, which planned and re-executed every
connected subset from base scans — **shared**: the materialized row-id
intermediate of a subset ``S`` is kept and extended by a single cached
hash join to count ``S ∪ {t}``, so a subset of size *n* costs one join
instead of *n − 1*.  Selection vectors and hash-build sides are reused
through an :class:`repro.engine.cache.ExecutionContext`.

Caching here is a pure correctness-path optimization: every count is
exact and bit-identical with caches on or off (tests assert this), and
nothing in this module is part of a *timed* benchmark measurement.
The per-query count cache is LRU-bounded by a byte budget and is
dropped — together with the execution context's caches — by
:meth:`TrueCardinalityService.invalidate` or automatically when the
database's ``data_version`` moves after an insert batch.
"""

from __future__ import annotations

import numpy as np

from repro.core.injection import sub_plan_sets
from repro.engine.cache import ExecutionContext, LRUByteCache
from repro.engine.database import Database
from repro.engine.executor import ExecutionAborted, Executor
from repro.engine.planner import Planner
from repro.engine.plans import JOIN_HASH, JoinNode, PlanNode, ScanNode
from repro.engine.predicates import conjunction_mask
from repro.engine.query import Query
from repro.engine.subsets import leaf_split

#: Budget for the per-(sub-)query exact-count cache.  Counts are tiny;
#: this bounds the formerly unbounded dict at a fixed byte footprint.
COUNT_CACHE_BYTES = 8 * 1024 * 1024

#: Soft cap on the materialized intermediates kept alive while one
#: query's sub-plan space is being counted.  Oversized intermediates
#: are still counted but not retained; supersets rebuild them on
#: demand.
MATERIALIZED_BUDGET_BYTES = 256 * 1024 * 1024


class TrueCardinalityService:
    """Computes and caches exact (sub-plan) cardinalities."""

    def __init__(
        self,
        database: Database,
        max_intermediate_rows: int = 20_000_000,
        use_exec_cache: bool = True,
        share_intermediates: bool = True,
        count_cache_budget_bytes: int = COUNT_CACHE_BYTES,
    ):
        self._database = database
        self._planner = Planner(database)
        self._context = ExecutionContext(database) if use_exec_cache else None
        self._executor = Executor(
            database,
            max_intermediate_rows=max_intermediate_rows,
            context=self._context,
        )
        self._max_rows = max_intermediate_rows
        self._share = share_intermediates
        self._cache = LRUByteCache(
            count_cache_budget_bytes,
            metric_prefix="cache.truecards",
            sizer=lambda value: 160,  # key tuple + int, nominal charge
        )
        self._seen_version = getattr(database, "data_version", 0)

    @property
    def database(self) -> Database:
        return self._database

    @property
    def context(self) -> ExecutionContext | None:
        """The execution context carrying the reuse caches (or None)."""
        return self._context

    def invalidate(self) -> None:
        """Drop all cached counts and reuse caches (call after updates)."""
        self._cache.clear()
        if self._context is not None:
            self._context.invalidate()

    # -- public API ------------------------------------------------------------

    def _check_version(self) -> None:
        version = getattr(self._database, "data_version", 0)
        if version != self._seen_version:
            self.invalidate()
            self._seen_version = version

    def cardinality(self, query: Query) -> int:
        """Exact result cardinality of ``query``."""
        self._check_version()
        count = self._cache.get(query.key())
        if count is None:
            count = self.sub_plan_cards(query)[query.tables]
        return count

    def sub_plan_cards(self, query: Query) -> dict[frozenset[str], int]:
        """Exact cardinality of every sub-plan query of ``query``."""
        self._check_version()
        result: dict[frozenset[str], int] = {}
        partial: dict[frozenset[str], float] = {}
        materialized: dict[frozenset[str], dict[str, np.ndarray]] = {}
        materialized_bytes = [0]
        previous_size = 1
        for subset in sub_plan_sets(query):
            if self._share and len(subset) > previous_size:
                # Level transition: counting size s+1 lazily
                # materializes size-s bases, whose own size-(s-1) bases
                # must still be resident; anything older can be freed
                # (rebuilt on demand if a cache hit skipped a level).
                self._prune_materialized(
                    materialized,
                    materialized_bytes,
                    keep_sizes={1, len(subset) - 1, len(subset) - 2},
                )
                previous_size = len(subset)
            subquery = query.subquery(subset)
            key = subquery.key()
            count = self._cache.get(key)
            if count is None:
                split = (
                    leaf_split(query, subset)
                    if self._share and len(subset) > 1
                    else None
                )
                if len(subset) == 1:
                    count = self._single_table_count(subquery)
                elif split is not None:
                    # Count the one-leaf extension of the shared base
                    # intermediate without materializing the output;
                    # the base itself materializes lazily, only when a
                    # subset actually extends it.
                    leaf, edge = split
                    base = self._materialize(
                        query, subset - {leaf}, materialized, materialized_bytes
                    )
                    scan = self._materialize(
                        query, frozenset((leaf,)), materialized, materialized_bytes
                    )
                    node = _extension_node(query, subset, leaf, edge)
                    count = self._executor.join_count(node, base, scan)
                else:
                    count = self._joined_count(subquery, partial)
                self._cache.put(key, count)
            result[subset] = count
            partial[subset] = float(count)
        return result

    # -- internals ----------------------------------------------------------------

    def _single_table_count(self, query: Query) -> int:
        table_name = next(iter(query.tables))
        predicates = tuple(query.predicates)
        if self._context is not None and self._context.enabled:
            return int(len(self._context.selection_rows(table_name, predicates)))
        table = self._database.tables[table_name]
        mask = conjunction_mask(table, list(predicates))
        return int(np.count_nonzero(mask))

    def _scan_rows(self, query: Query, table: str) -> dict[str, np.ndarray]:
        node = ScanNode(
            tables=frozenset((table,)),
            table=table,
            predicates=query.predicates_on(table),
        )
        return self._executor.scan_rows(node)

    def _materialize(
        self,
        query: Query,
        subset: frozenset[str],
        materialized: dict[frozenset[str], dict[str, np.ndarray]],
        materialized_bytes: list[int],
    ) -> dict[str, np.ndarray]:
        """Row-id arrays of the sub-plan on ``subset``, built bottom-up.

        Built lazily: a subset only pays the (output-proportional) join
        materialization when some superset actually extends it — one
        hash join of the materialized ``subset - {leaf}`` base with the
        cached scan of ``leaf``.  Counts are exact regardless of which
        leaf is split off, so the decomposition only affects speed.
        """
        rows = materialized.get(subset)
        if rows is not None:
            return rows
        if len(subset) == 1:
            (table,) = subset
            rows = self._scan_rows(query, table)
        else:
            split = leaf_split(query, subset)
            # Callers guard on leaf_split; every connected subset of a
            # valid (tree-shaped) query has one.
            assert split is not None
            leaf, edge = split
            base = self._materialize(
                query, subset - {leaf}, materialized, materialized_bytes
            )
            scan = self._materialize(
                query, frozenset((leaf,)), materialized, materialized_bytes
            )
            node = _extension_node(query, subset, leaf, edge)
            rows = self._executor.join_rows(node, base, scan)
        count = _row_count(rows)
        if count > self._max_rows:
            raise ExecutionAborted(
                f"intermediate result of {count} rows exceeds budget {self._max_rows}"
            )
        if len(subset) > 1:
            rows = self._trim_to_boundary(query, subset, rows)
        nbytes = sum(array.nbytes for array in rows.values())
        if materialized_bytes[0] + nbytes <= MATERIALIZED_BUDGET_BYTES:
            materialized[subset] = rows
            materialized_bytes[0] += nbytes
        return rows

    @staticmethod
    def _trim_to_boundary(
        query: Query,
        subset: frozenset[str],
        rows: dict[str, np.ndarray],
    ) -> dict[str, np.ndarray]:
        """Drop row-id columns no superset join can ever probe.

        Only *boundary* tables — those with a join edge leaving
        ``subset`` — can anchor the join that extends the intermediate
        by one leaf; interior columns are dead weight for counting, so
        shedding them keeps the joins' combine step proportional to the
        join-graph frontier, not the subset size.
        """
        boundary = set()
        for edge in query.join_edges:
            left_in = edge.left in subset
            if left_in != (edge.right in subset):
                boundary.add(edge.left if left_in else edge.right)
        if not boundary:
            # The full query: nothing joins it further, keep one
            # column so the row count stays readable.
            first = next(iter(rows))
            return {first: rows[first]}
        if len(boundary) < len(rows):
            return {name: rows[name] for name in sorted(boundary)}
        return rows

    @staticmethod
    def _prune_materialized(
        materialized: dict[frozenset[str], dict[str, np.ndarray]],
        materialized_bytes: list[int],
        keep_sizes: set[int],
    ) -> None:
        for subset in [s for s in materialized if len(s) not in keep_sizes]:
            freed = sum(array.nbytes for array in materialized[subset].values())
            materialized_bytes[0] -= freed
            del materialized[subset]

    def _joined_count(self, query: Query, partial: dict[frozenset[str], float]) -> int:
        """Seed counting path: plan with near-exact cards and execute.

        Kept as the non-shared reference implementation
        (``share_intermediates=False``) — the A/B baseline for the
        exec-cache benchmark and the bit-identity tests.
        """
        # The output cardinality of the subset itself is still unknown;
        # it is identical across all candidate plans for the subset, so
        # any placeholder yields the same plan choice.
        cards = dict(partial)
        cards[query.tables] = 0.0
        planned = self._planner.plan(query, cards)
        return self._executor.count(planned.plan)


def _row_count(rows: dict[str, np.ndarray]) -> int:
    return int(len(next(iter(rows.values()))))


def _extension_node(query: Query, subset: frozenset[str], leaf: str, edge) -> JoinNode:
    """The join node extending ``subset - {leaf}`` by the ``leaf`` scan."""
    oriented = edge if edge.right == leaf else edge.reversed()
    return JoinNode(
        tables=subset,
        left=PlanNode(tables=subset - {leaf}),
        right=ScanNode(
            tables=frozenset((leaf,)),
            table=leaf,
            predicates=query.predicates_on(leaf),
        ),
        edge=oriented,
        method=JOIN_HASH,
    )
