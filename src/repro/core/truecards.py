"""Exact cardinalities for queries and their sub-plan spaces.

``TrueCardinalityService`` is the workhorse behind the ``TrueCard``
baseline, workload labelling, Q-Error denominators and the true-card
term of P-Error.  Sub-plan cardinalities are computed bottom-up:
smaller subsets are counted first so that the plan used to count a
larger subset is already driven by exact cardinalities (i.e. near
optimal), keeping the computation fast.
"""

from __future__ import annotations

import numpy as np

from repro.core.injection import sub_plan_sets
from repro.engine.database import Database
from repro.engine.executor import Executor
from repro.engine.planner import Planner
from repro.engine.predicates import conjunction_mask
from repro.engine.query import Query


class TrueCardinalityService:
    """Computes and caches exact (sub-plan) cardinalities."""

    def __init__(
        self,
        database: Database,
        max_intermediate_rows: int = 20_000_000,
    ):
        self._database = database
        self._planner = Planner(database)
        self._executor = Executor(database, max_intermediate_rows=max_intermediate_rows)
        self._cache: dict[tuple, int] = {}

    @property
    def database(self) -> Database:
        return self._database

    def invalidate(self) -> None:
        """Drop all cached counts (call after data updates)."""
        self._cache.clear()

    # -- public API ------------------------------------------------------------

    def cardinality(self, query: Query) -> int:
        """Exact result cardinality of ``query``."""
        key = query.key()
        if key not in self._cache:
            self.sub_plan_cards(query)
        return self._cache[key]

    def sub_plan_cards(self, query: Query) -> dict[frozenset[str], int]:
        """Exact cardinality of every sub-plan query of ``query``."""
        result: dict[frozenset[str], int] = {}
        partial: dict[frozenset[str], float] = {}
        for subset in sub_plan_sets(query):
            subquery = query.subquery(subset)
            key = subquery.key()
            if key in self._cache:
                count = self._cache[key]
            elif len(subset) == 1:
                count = self._single_table_count(subquery)
                self._cache[key] = count
            else:
                count = self._joined_count(subquery, partial)
                self._cache[key] = count
            result[subset] = count
            partial[subset] = float(count)
        return result

    # -- internals ----------------------------------------------------------------

    def _single_table_count(self, query: Query) -> int:
        table_name = next(iter(query.tables))
        table = self._database.tables[table_name]
        mask = conjunction_mask(table, list(query.predicates))
        return int(np.count_nonzero(mask))

    def _joined_count(self, query: Query, partial: dict[frozenset[str], float]) -> int:
        # The output cardinality of the subset itself is still unknown;
        # it is identical across all candidate plans for the subset, so
        # any placeholder yields the same plan choice.
        cards = dict(partial)
        cards[query.tables] = 0.0
        planned = self._planner.plan(query, cards)
        return self._executor.count(planned.plan)
