"""Plain-text table rendering for the experiment harness.

The benchmark scripts print tables shaped like the paper's; these
helpers keep formatting consistent (fixed-width columns, ``> x``
markers for aborted workloads, h/m/s time units).
"""

from __future__ import annotations


def format_seconds(seconds: float, aborted: bool = False) -> str:
    """Human-friendly duration; aborted aggregates are lower bounds."""
    prefix = "> " if aborted else ""
    if seconds >= 3600:
        return f"{prefix}{seconds / 3600:.2f}h"
    if seconds >= 60:
        return f"{prefix}{seconds / 60:.2f}m"
    if seconds >= 1:
        return f"{prefix}{seconds:.2f}s"
    return f"{prefix}{seconds * 1000:.0f}ms"


def format_improvement(baseline_seconds: float, seconds: float) -> str:
    if baseline_seconds <= 0:
        return "n/a"
    return f"{100.0 * (1.0 - seconds / baseline_seconds):+.1f}%"


def format_count(value: float) -> str:
    """Scientific-ish rendering of cardinalities and large counts."""
    if value >= 1e6:
        return f"{value:.2e}"
    if value == int(value):
        return str(int(value))
    return f"{value:.2f}"


def format_bytes(num_bytes: int) -> str:
    if num_bytes >= 1 << 20:
        return f"{num_bytes / (1 << 20):.1f}MB"
    if num_bytes >= 1 << 10:
        return f"{num_bytes / (1 << 10):.1f}KB"
    return f"{num_bytes}B"


def render_bars(
    labels: list[str],
    values: list[float],
    title: str = "",
    width: int = 40,
    formatter=format_seconds,
) -> str:
    """ASCII horizontal bar chart (Figure-3 style panels).

    Bars are scaled to the maximum value; zero/negative values render
    as empty bars.
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    lines = [title] if title else []
    label_width = max((len(label) for label in labels), default=0)
    peak = max((v for v in values if v > 0), default=1.0)
    for label, value in zip(labels, values):
        filled = int(round(width * max(value, 0.0) / peak))
        bar = "#" * filled
        lines.append(f"{label.ljust(label_width)}  {bar.ljust(width)} {formatter(value)}")
    return "\n".join(lines)


def render_table(headers: list[str], rows: list[list[str]], title: str = "") -> str:
    """Fixed-width table with a separator under the header."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(h for h in headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
