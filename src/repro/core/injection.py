"""Sub-plan query space and cardinality injection.

Section 4.2 of the paper: for a query joining tables ``A, B, C`` the
*sub-plan query space* contains the queries on every connected subset
(``A``, ``B``, ``C``, ``A ⋈ B``, ...), each with the filter predicates
that fall inside the subset.  The built-in planner needs a cardinality
for each of them; the benchmark captures the space, asks a CardEst
method for every estimate, and injects the results back — here, as the
``cards`` mapping consumed by :class:`repro.engine.planner.Planner`.

Estimation is **batched**: the whole sub-plan space is priced with one
:meth:`~repro.estimators.base.CardinalityEstimator.estimate_batch`
call, so vectorised estimators (LW-NN, MSCN, LW-XGB, ...) pay one
forward pass per query instead of one per sub-plan.  Clamping and
tracing semantics are unchanged from the historical per-sub-plan loop:
estimates are clamped to at least one row (PostgreSQL's behaviour),
the batch latency is recorded once on the ``inference`` span, and the
``inference.latency_seconds.<estimator>`` histogram still receives one
*amortised* observation per sub-plan so its count keeps meaning
"sub-plans priced" and its total "seconds spent in inference".
"""

from __future__ import annotations

import time

from repro.engine.query import Query
from repro.engine.subsets import connected_subsets
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace


def sub_plan_sets(query: Query) -> list[frozenset[str]]:
    """All connected table subsets of ``query``, smallest first.

    Connectivity is evaluated over the query's own join edges.  The
    result is deterministic (sorted by size, then lexicographically).
    Delegates to the shared, per-shape-memoized
    :mod:`repro.engine.subsets` space, so the planner, the injection
    pass and the true-cardinality service enumerate the subset space
    exactly once per join template.
    """
    return connected_subsets(query)


def sub_plan_queries(query: Query) -> dict[frozenset[str], Query]:
    """The sub-plan query for every connected subset of ``query``."""
    return {subset: query.subquery(subset) for subset in sub_plan_sets(query)}


def record_batch_inference(
    estimator_name: str, batch_size: int, elapsed_seconds: float
) -> None:
    """Feed one batched inference call into the campaign metrics.

    Keeps the pre-batching metric contract intact: the
    ``injection.sub_plans_estimated`` counter advances by the batch
    size and ``inference.latency_seconds.<estimator>`` receives one
    amortised observation per sub-plan (count == sub-plans priced,
    total == wall seconds spent).  The batch itself is recorded in
    ``inference.batch_size.<estimator>`` so dashboards can tell a
    100-sub-plan batch from 100 singleton calls.
    """
    if batch_size <= 0:
        return
    registry = obs_metrics.registry()
    amortised = elapsed_seconds / batch_size
    histogram = registry.histogram(f"inference.latency_seconds.{estimator_name}")
    for _ in range(batch_size):
        histogram.observe(amortised)
    registry.histogram(f"inference.batch_size.{estimator_name}").observe(
        float(batch_size)
    )
    registry.counter("injection.sub_plans_estimated").inc(batch_size)


def estimate_sub_plans(estimator, query: Query) -> dict[frozenset[str], float]:
    """Ask ``estimator`` for the cardinality of every sub-plan query.

    This is the benchmark's injection step: the returned mapping is
    handed directly to the planner.  The whole sub-plan space is priced
    with a single ``estimate_batch`` call (duck-typed estimators that
    only define ``estimate`` are priced one sub-plan at a time);
    estimates are clamped to at least one row, matching PostgreSQL's
    behaviour.

    When a tracer is active the pass is wrapped in an ``inference``
    span carrying the batch latency, and the per-sub-plan metrics keep
    their historical meaning (see :func:`record_batch_inference`); with
    tracing off only the batched call runs.
    """
    sub_queries = sub_plan_queries(query)
    estimator_name = getattr(estimator, "name", type(estimator).__name__)
    with obs_trace.span(
        "inference", estimator=estimator_name, sub_plans=len(sub_queries)
    ) as span:
        batch = getattr(estimator, "estimate_batch", None)
        started = time.perf_counter()
        if batch is not None:
            estimates = batch(list(sub_queries.values()))
        else:
            estimates = [estimator.estimate(q) for q in sub_queries.values()]
        elapsed = time.perf_counter() - started
        if len(estimates) != len(sub_queries):
            raise ValueError(
                f"{estimator_name}.estimate_batch returned {len(estimates)} "
                f"estimates for {len(sub_queries)} sub-plans"
            )
        cards = {
            subset: max(1.0, float(estimate))
            for subset, estimate in zip(sub_queries, estimates)
        }
        if obs_trace.is_active():
            span.set(batch_seconds=elapsed)
            record_batch_inference(estimator_name, len(sub_queries), elapsed)
    return cards
