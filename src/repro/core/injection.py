"""Sub-plan query space and cardinality injection.

Section 4.2 of the paper: for a query joining tables ``A, B, C`` the
*sub-plan query space* contains the queries on every connected subset
(``A``, ``B``, ``C``, ``A ⋈ B``, ...), each with the filter predicates
that fall inside the subset.  The built-in planner needs a cardinality
for each of them; the benchmark captures the space, asks a CardEst
method for every estimate, and injects the results back — here, as the
``cards`` mapping consumed by :class:`repro.engine.planner.Planner`.
"""

from __future__ import annotations

import time

from repro.engine.query import Query
from repro.engine.subsets import connected_subsets
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace


def sub_plan_sets(query: Query) -> list[frozenset[str]]:
    """All connected table subsets of ``query``, smallest first.

    Connectivity is evaluated over the query's own join edges.  The
    result is deterministic (sorted by size, then lexicographically).
    Delegates to the shared, per-shape-memoized
    :mod:`repro.engine.subsets` space, so the planner, the injection
    pass and the true-cardinality service enumerate the subset space
    exactly once per join template.
    """
    return connected_subsets(query)


def sub_plan_queries(query: Query) -> dict[frozenset[str], Query]:
    """The sub-plan query for every connected subset of ``query``."""
    return {subset: query.subquery(subset) for subset in sub_plan_sets(query)}


def estimate_sub_plans(estimator, query: Query) -> dict[frozenset[str], float]:
    """Ask ``estimator`` for the cardinality of every sub-plan query.

    This is the benchmark's injection step: the returned mapping is
    handed directly to the planner.  Estimates are clamped to at least
    one row, matching PostgreSQL's behaviour.

    When a tracer is active the whole pass is wrapped in an
    ``inference`` span and each sub-plan estimate feeds the
    ``inference.latency_seconds.<estimator>`` histogram; with tracing
    off the loop body is unchanged.
    """
    sub_queries = sub_plan_queries(query)
    estimator_name = getattr(estimator, "name", type(estimator).__name__)
    cards = {}
    with obs_trace.span(
        "inference", estimator=estimator_name, sub_plans=len(sub_queries)
    ):
        if obs_trace.is_active():
            histogram = obs_metrics.registry().histogram(
                f"inference.latency_seconds.{estimator_name}"
            )
            for subset, subquery in sub_queries.items():
                started = time.perf_counter()
                estimate = float(estimator.estimate(subquery))
                histogram.observe(time.perf_counter() - started)
                cards[subset] = max(1.0, estimate)
            obs_metrics.registry().counter("injection.sub_plans_estimated").inc(
                len(sub_queries)
            )
        else:
            for subset, subquery in sub_queries.items():
                cards[subset] = max(1.0, float(estimator.estimate(subquery)))
    return cards
