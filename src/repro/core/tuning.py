"""Hyper-parameter tuning against end-to-end metrics (paper §4.1).

The paper's Remarks describe running "a grid search to explore the
combination of [hyper-parameter] values that largely improves the
end-to-end performance on a validation set of queries".  This module
implements exactly that: configurations are scored by their P-Error
distribution over a validation workload (P-Error being the paper's
fast proxy for end-to-end time — Section 7.2 motivates it precisely
for "situations where fast evaluation is needed, e.g., hyper-parameter
tuning").
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.injection import estimate_sub_plans
from repro.core.metrics import p_error
from repro.engine.database import Database
from repro.engine.planner import Planner
from repro.workloads.generator import Workload


@dataclass
class TuningResult:
    """Outcome of one grid search."""

    best_params: dict
    best_score: float
    trials: list[tuple[dict, float]] = field(default_factory=list)
    seconds: float = 0.0


def score_estimator(
    estimator,
    database: Database,
    validation: Workload,
    percentile: float = 90.0,
    planner: Planner | None = None,
) -> float:
    """P-Error percentile of ``estimator`` over a validation workload."""
    planner = planner or Planner(database)
    errors = []
    for labeled in validation.queries:
        true_cards = {
            s: float(c) for s, c in labeled.sub_plan_true_cards.items()
        }
        estimates = estimate_sub_plans(estimator, labeled.query)
        errors.append(p_error(planner, labeled.query, estimates, true_cards))
    return float(np.percentile(errors, percentile))


def grid_search(
    factory: Callable[..., object],
    grid: dict[str, list],
    database: Database,
    validation: Workload,
    percentile: float = 90.0,
) -> TuningResult:
    """Fit one estimator per grid point, keep the best P-Error score.

    ``factory`` is the estimator class (or any callable accepting the
    grid's keys as keyword arguments); every combination is fitted on
    ``database`` and scored on ``validation``.  Deterministic given
    deterministic estimators.
    """
    if not grid:
        raise ValueError("empty grid")
    started = time.perf_counter()
    planner = Planner(database)
    keys = sorted(grid)
    trials: list[tuple[dict, float]] = []
    for combination in itertools.product(*(grid[k] for k in keys)):
        params = dict(zip(keys, combination))
        estimator = factory(**params)
        estimator.fit(database)
        score = score_estimator(
            estimator, database, validation, percentile, planner
        )
        trials.append((params, score))
    best_params, best_score = min(trials, key=lambda t: t[1])
    return TuningResult(
        best_params=best_params,
        best_score=best_score,
        trials=trials,
        seconds=time.perf_counter() - started,
    )
