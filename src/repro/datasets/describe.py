"""Dataset statistics behind Table 1 of the paper.

For each benchmark database this module computes the criteria the
paper uses to argue STATS is harder than the simplified IMDB: scale
(tables, filterable attributes, full join size), data complexity
(distribution skew, pairwise correlation, total domain size) and
schema richness (join forms, number of join relations).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as scipy_stats

from repro.engine.catalog import JoinEdge
from repro.engine.database import Database


@dataclass(frozen=True)
class DatasetSummary:
    """The Table-1 row for one dataset."""

    name: str
    num_tables: int
    num_attributes: int
    attributes_per_table: tuple[int, int]
    full_join_size: float
    total_domain_size: int
    average_skewness: float
    average_correlation: float
    join_forms: str
    num_join_relations: int


def describe(database: Database) -> DatasetSummary:
    """Compute the full Table-1 summary of ``database``."""
    per_table_attrs = [
        len(table.schema.filterable_columns) for table in database.tables.values()
    ]
    return DatasetSummary(
        name=database.name,
        num_tables=len(database.tables),
        num_attributes=sum(per_table_attrs),
        attributes_per_table=(min(per_table_attrs), max(per_table_attrs)),
        full_join_size=full_join_size(database),
        total_domain_size=total_domain_size(database),
        average_skewness=average_skewness(database),
        average_correlation=average_pairwise_correlation(database),
        join_forms=join_forms(database),
        num_join_relations=len(database.join_graph.edges),
    )


def total_domain_size(database: Database) -> int:
    """Sum of distinct-value counts over all filterable attributes."""
    total = 0
    for table in database.tables.values():
        for column in table.schema.filterable_columns:
            total += len(np.unique(table.column(column.name).non_null_values()))
    return total


def average_skewness(database: Database) -> float:
    """Mean absolute moment skewness over all filterable attributes."""
    values = []
    for table in database.tables.values():
        for column in table.schema.filterable_columns:
            data = table.column(column.name).non_null_values()
            if len(data) > 2 and data.std() > 0:
                values.append(abs(float(scipy_stats.skew(data))))
    return float(np.mean(values)) if values else 0.0


def average_pairwise_correlation(database: Database) -> float:
    """Mean absolute Pearson correlation over within-table attribute pairs."""
    values = []
    for table in database.tables.values():
        attrs = table.schema.filterable_columns
        for i in range(len(attrs)):
            for j in range(i + 1, len(attrs)):
                a = table.column(attrs[i].name)
                b = table.column(attrs[j].name)
                both = ~a.null_mask & ~b.null_mask
                if both.sum() < 3:
                    continue
                x, y = a.values[both], b.values[both]
                if x.std() == 0 or y.std() == 0:
                    continue
                values.append(abs(float(np.corrcoef(x, y)[0, 1])))
    return float(np.mean(values)) if values else 0.0


def join_forms(database: Database) -> str:
    """Available join forms in the schema graph: star or star/chain/mixed.

    A pure star (every edge incident to one hub) supports only star
    joins; anything richer supports chains and mixed forms as well.
    """
    graph = database.join_graph
    tables = graph.tables
    for hub in tables:
        if all(hub in edge.tables for edge in graph.edges):
            return "star"
    return "star/chain/mixed"


def full_join_size(database: Database, root: str | None = None) -> float:
    """Size of the outer join of all tables along a spanning tree.

    Computed exactly by propagating per-key match counts bottom-up
    (each unmatched parent row is NULL-extended, i.e. contributes a
    factor of one, approximating the full *outer* join the paper
    reports).  The spanning tree is chosen by BFS from ``root`` over
    the schema's join edges, preferring PK-FK edges.
    """
    graph = database.join_graph
    tables = sorted(graph.tables)
    if root is None:
        # Root at the most "primary" table (most PK sides of PK-FK
        # edges), so the outer join preserves unmatched parents.
        def primariness(table: str) -> int:
            score = 0
            for edge in graph.edges_of(table):
                if edge.one_to_many:
                    score += 1 if edge.left == table else -1
            return score

        root = max(tables, key=primariness)

    tree = _spanning_tree(graph.edges, root)
    return _outer_join_weight(database, root, None, tree)


def _spanning_tree(edges: list[JoinEdge], root: str) -> dict[str, list[JoinEdge]]:
    """BFS spanning tree: maps each table to its child edges."""
    ordered = sorted(edges, key=lambda e: (not e.one_to_many, e.left, e.right))
    children: dict[str, list[JoinEdge]] = {}
    visited = {root}
    frontier = [root]
    while frontier:
        current = frontier.pop(0)
        for edge in ordered:
            if current in edge.tables:
                other = edge.other(current)
                if other not in visited:
                    visited.add(other)
                    children.setdefault(current, []).append(edge)
                    frontier.append(other)
    return children


def _outer_join_weight(
    database: Database,
    table_name: str,
    parent_edge: JoinEdge | None,
    tree: dict[str, list[JoinEdge]],
) -> float | tuple[np.ndarray, np.ndarray]:
    """Recursive count propagation.

    For the root this returns the total outer-join size; for any other
    node it returns ``(keys, weights)`` aggregated on the column joining
    it to its parent.
    """
    table = database.tables[table_name]
    weights = np.ones(table.num_rows, dtype=np.float64)

    for edge in tree.get(table_name, []):
        child = edge.other(table_name)
        child_keys, child_weights = _outer_join_weight(database, child, edge, tree)
        own_column = table.column(edge.key_for(table_name))
        positions = np.searchsorted(child_keys, own_column.values)
        positions = np.clip(positions, 0, max(0, len(child_keys) - 1))
        matched = np.zeros(table.num_rows, dtype=np.float64)
        if len(child_keys):
            hit = (child_keys[positions] == own_column.values) & ~own_column.null_mask
            matched[hit] = child_weights[positions[hit]]
        # Outer join: unmatched rows survive NULL-extended.
        weights *= np.maximum(matched, 1.0)

    if parent_edge is None:
        return float(weights.sum())

    key_column = table.column(parent_edge.key_for(table_name))
    valid = ~key_column.null_mask
    keys, inverse = np.unique(key_column.values[valid], return_inverse=True)
    aggregated = np.zeros(len(keys), dtype=np.float64)
    np.add.at(aggregated, inverse, weights[valid])
    return keys, aggregated
