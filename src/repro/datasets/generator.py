"""Primitives for generating skewed, correlated relational data.

These building blocks let the dataset modules reproduce the qualitative
data properties the paper's Section 3 attributes to STATS: strong
distribution skew, high attribute correlation, and power-law join-key
fan-outs (key values matching zero, one, or hundreds of rows in the
referencing table).
"""

from __future__ import annotations

import numpy as np


def zipf_ints(
    rng: np.random.Generator,
    n: int,
    domain: int,
    exponent: float = 1.5,
    start: int = 0,
) -> np.ndarray:
    """``n`` integers over ``[start, start + domain)`` with Zipfian mass.

    Rank 1 of the Zipf law is mapped to ``start``, rank 2 to
    ``start + 1`` and so on, producing a heavily skewed categorical
    column with a known domain size.
    """
    if domain <= 0:
        raise ValueError("domain must be positive")
    ranks = np.arange(1, domain + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    weights /= weights.sum()
    return start + rng.choice(domain, size=n, p=weights)


def correlated_ints(
    rng: np.random.Generator,
    base: np.ndarray,
    domain: int,
    correlation: float,
    exponent: float = 1.2,
    start: int = 0,
) -> np.ndarray:
    """A column correlated with ``base``.

    With probability ``correlation`` a row copies a deterministic
    monotone transform of its ``base`` value (rank-preserving); with the
    remaining probability it draws an independent Zipfian value.  The
    mixture yields a tunable rank correlation without assuming any
    parametric copula.
    """
    if not 0.0 <= correlation <= 1.0:
        raise ValueError("correlation must be within [0, 1]")
    n = len(base)
    base = np.asarray(base, dtype=np.float64)
    span = base.max() - base.min()
    if span == 0:
        scaled = np.zeros(n)
    else:
        scaled = (base - base.min()) / span
    dependent = start + np.floor(scaled * (domain - 1)).astype(np.int64)
    independent = zipf_ints(rng, n, domain, exponent=exponent, start=start)
    copy_mask = rng.random(n) < correlation
    return np.where(copy_mask, dependent, independent)


def powerlaw_fanout_keys(
    rng: np.random.Generator,
    n_children: int,
    parent_keys: np.ndarray,
    exponent: float = 1.3,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Assign each of ``n_children`` rows a parent key with power-law skew.

    A few parents receive hundreds of children while many receive zero
    or one — the skewed join-key degree distribution the paper calls
    out for STATS.  Optional ``weights`` bias the skew towards specific
    parents (e.g. high-reputation users write more posts), creating
    correlation between a parent attribute and its fan-out.
    """
    n_parents = len(parent_keys)
    if weights is None:
        weights = (np.arange(1, n_parents + 1, dtype=np.float64)) ** (-exponent)
        weights = rng.permutation(weights)
    else:
        weights = np.asarray(weights, dtype=np.float64)
        weights = weights - weights.min() + 1.0
        weights = weights ** exponent
    probabilities = weights / weights.sum()
    chosen = rng.choice(n_parents, size=n_children, p=probabilities)
    return np.asarray(parent_keys)[chosen]


def skewed_dates(
    rng: np.random.Generator,
    n: int,
    start_day: int,
    end_day: int,
    recency_bias: float = 1.5,
) -> np.ndarray:
    """Integer "days since epoch" biased towards recent dates.

    ``recency_bias > 1`` concentrates mass near ``end_day``, matching
    the growth of user-generated content over time.
    """
    if end_day <= start_day:
        raise ValueError("end_day must exceed start_day")
    u = rng.random(n) ** (1.0 / recency_bias)
    return start_day + np.floor(u * (end_day - start_day)).astype(np.int64)


def with_nulls(
    rng: np.random.Generator,
    values: np.ndarray,
    null_frac: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Pair ``values`` with a NULL mask of expected fraction ``null_frac``."""
    mask = rng.random(len(values)) < null_frac
    return values, mask


def bounded(values: np.ndarray, low: int, high: int) -> np.ndarray:
    """Clip integer values into ``[low, high]``."""
    return np.clip(values, low, high)
