"""CSV export/import for the benchmark databases.

Mirrors the paper's released artifacts: the STATS dataset ships as
one CSV per table so it can be loaded into a real DBMS.  NULLs are
written as empty fields; a small ``schema.json`` sidecar records the
column metadata and the join graph so the database round-trips.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

import numpy as np

from repro.engine.catalog import ColumnMeta, JoinEdge, JoinGraph, TableSchema
from repro.engine.database import Database
from repro.engine.table import Column, Table
from repro.engine.types import ColumnKind


def export_csv(database: Database, directory: Path) -> None:
    """Write one ``<table>.csv`` per table plus ``schema.json``."""
    directory.mkdir(parents=True, exist_ok=True)
    for name, table in database.tables.items():
        with open(directory / f"{name}.csv", "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(table.schema.column_names)
            columns = [table.column(c) for c in table.schema.column_names]
            for row in range(table.num_rows):
                writer.writerow(
                    [
                        ""
                        if column.null_mask[row]
                        else _format_value(column.values[row])
                        for column in columns
                    ]
                )
    (directory / "schema.json").write_text(json.dumps(_schema_payload(database)))


def import_csv(directory: Path) -> Database:
    """Load a database previously written by :func:`export_csv`."""
    payload = json.loads((directory / "schema.json").read_text())
    tables: dict[str, Table] = {}
    for table_payload in payload["tables"]:
        schema = _schema_from(table_payload)
        tables[schema.name] = _read_table(directory / f"{schema.name}.csv", schema)
    graph = JoinGraph(
        edges=[
            JoinEdge(left, lc, right, rc, one_to_many=otm)
            for left, lc, right, rc, otm in payload["join_edges"]
        ]
    )
    return Database(name=payload["name"], tables=tables, join_graph=graph)


def _format_value(value) -> str:
    number = float(value)
    if number == int(number):
        return str(int(number))
    return repr(number)


def _schema_payload(database: Database) -> dict:
    return {
        "name": database.name,
        "tables": [
            {
                "name": table.schema.name,
                "primary_key": table.schema.primary_key,
                "columns": [
                    {
                        "name": meta.name,
                        "kind": meta.kind.value,
                        "filterable": meta.filterable,
                        "is_key": meta.is_key,
                    }
                    for meta in table.schema.columns
                ],
            }
            for table in database.tables.values()
        ],
        "join_edges": [
            [e.left, e.left_column, e.right, e.right_column, e.one_to_many]
            for e in database.join_graph.edges
        ],
    }


def _schema_from(payload: dict) -> TableSchema:
    return TableSchema(
        payload["name"],
        tuple(
            ColumnMeta(
                column["name"],
                ColumnKind(column["kind"]),
                filterable=column["filterable"],
                is_key=column["is_key"],
            )
            for column in payload["columns"]
        ),
        primary_key=payload["primary_key"],
    )


def _read_table(path: Path, schema: TableSchema) -> Table:
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        if tuple(header) != schema.column_names:
            raise ValueError(f"CSV header of {path.name} does not match the schema")
        rows = list(reader)

    columns: dict[str, Column] = {}
    for index, meta in enumerate(schema.columns):
        dtype = meta.kind.dtype
        values = np.zeros(len(rows), dtype=dtype)
        nulls = np.zeros(len(rows), dtype=bool)
        for row_number, row in enumerate(rows):
            cell = row[index]
            if cell == "":
                nulls[row_number] = True
            else:
                values[row_number] = dtype.type(float(cell))
        columns[meta.name] = Column(values=values, null_mask=nulls)
    return Table(schema=schema, columns=columns)
