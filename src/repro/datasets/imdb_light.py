"""The simplified-IMDB-like database behind the JOB-LIGHT analog.

The paper's JOB-LIGHT workload touches six IMDB tables whose joins all
star around ``title``'s primary key, with only 1-2 filterable n./c.
attributes per table and comparatively mild skew and correlation.
This module reproduces that *easy* setting so the benchmark can show,
as the paper does, that nearly every estimator looks good on it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets import generator as gen
from repro.engine.catalog import ColumnMeta, JoinEdge, JoinGraph, TableSchema
from repro.engine.database import Database
from repro.engine.table import Table
from repro.engine.types import ColumnKind


@dataclass(frozen=True)
class ImdbConfig:
    """Scale and seed knobs for the synthetic simplified-IMDB database."""

    seed: int = 7
    title: int = 24_000
    cast_info: int = 90_000
    movie_companies: int = 36_000
    movie_info: int = 60_000
    movie_info_idx: int = 30_000
    movie_keyword: int = 54_000


def _key(name: str) -> ColumnMeta:
    return ColumnMeta(name, ColumnKind.INT, filterable=False, is_key=True)


def _attr(name: str) -> ColumnMeta:
    return ColumnMeta(name, ColumnKind.INT, filterable=True, is_key=False)


TITLE = TableSchema(
    "title",
    (_key("id"), _attr("kind_id"), _attr("production_year")),
    primary_key="id",
)

CAST_INFO = TableSchema(
    "cast_info",
    (_key("id"), _key("movie_id"), _attr("role_id")),
    primary_key="id",
)

MOVIE_COMPANIES = TableSchema(
    "movie_companies",
    (_key("id"), _key("movie_id"), _attr("company_type_id")),
    primary_key="id",
)

MOVIE_INFO = TableSchema(
    "movie_info",
    (_key("id"), _key("movie_id"), _attr("info_type_id")),
    primary_key="id",
)

MOVIE_INFO_IDX = TableSchema(
    "movie_info_idx",
    (_key("id"), _key("movie_id"), _attr("info_type_id")),
    primary_key="id",
)

MOVIE_KEYWORD = TableSchema(
    "movie_keyword",
    (_key("id"), _key("movie_id"), _attr("keyword_id")),
    primary_key="id",
)


def imdb_join_graph() -> JoinGraph:
    """Five star joins centred on ``title.id`` (the JOB-LIGHT shape)."""
    graph = JoinGraph()
    for satellite in (
        "cast_info",
        "movie_companies",
        "movie_info",
        "movie_info_idx",
        "movie_keyword",
    ):
        graph.add(JoinEdge("title", "id", satellite, "movie_id", one_to_many=True))
    return graph


def build_imdb_light(config: ImdbConfig | None = None) -> Database:
    """Generate the simplified-IMDB database deterministically."""
    config = config or ImdbConfig()
    rng = np.random.default_rng(config.seed)

    n_title = config.title
    title = Table.from_arrays(
        TITLE,
        {
            "id": np.arange(n_title),
            "kind_id": gen.zipf_ints(rng, n_title, domain=7, exponent=1.6, start=1),
            "production_year": 1930 + gen.bounded(
                gen.skewed_dates(rng, n_title, 0, 90, recency_bias=1.3), 0, 90
            ),
        },
    )
    title_ids = title.column("id").values

    def satellite(schema: TableSchema, n: int, domain: int, exponent: float) -> Table:
        movie = gen.powerlaw_fanout_keys(rng, n, title_ids, exponent=0.35)
        attr = gen.zipf_ints(rng, n, domain=domain, exponent=exponent, start=1)
        return Table.from_arrays(
            schema,
            {"id": np.arange(n), "movie_id": movie, schema.columns[2].name: attr},
        )

    return Database(
        name="imdb-light",
        tables={
            "title": title,
            "cast_info": satellite(CAST_INFO, config.cast_info, 11, 1.3),
            "movie_companies": satellite(MOVIE_COMPANIES, config.movie_companies, 4, 1.2),
            "movie_info": satellite(MOVIE_INFO, config.movie_info, 110, 1.2),
            "movie_info_idx": satellite(MOVIE_INFO_IDX, config.movie_info_idx, 110, 1.2),
            "movie_keyword": satellite(MOVIE_KEYWORD, config.movie_keyword, 1_000, 1.3),
        },
        join_graph=imdb_join_graph(),
    )
