"""The STATS-like benchmark database (Figure 1 of the paper).

The real STATS dataset is an anonymized dump of the Stats Stack
Exchange network.  This module generates a deterministic synthetic
database with the same schema, the same 23 filterable n./c. attributes
and the same 12 join relations, engineered to reproduce the data
properties the paper builds its benchmark on:

- heavily skewed attribute distributions (Zipfian values),
- strong cross-attribute correlation within tables (e.g. a post's
  score tracks its view count; a user's up-votes track reputation),
- power-law join-key fan-outs correlated with attributes (active users
  own most posts, popular posts attract most comments/votes),
- both PK-FK (one-to-many) and FK-FK (many-to-many) join relations,
- timestamp columns that respect referential chronology, enabling the
  paper's update experiment (split at a date, insert the rest).

Days are measured as integers since 2010-01-01; ``SPLIT_DAY`` marks
2014-01-01, the paper's "train on data created before 2014" boundary.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets import generator as gen
from repro.engine.catalog import ColumnMeta, JoinEdge, JoinGraph, TableSchema
from repro.engine.database import Database
from repro.engine.table import Column, Table
from repro.engine.types import ColumnKind

#: integer day index of 2014-01-01 relative to 2010-01-01.
SPLIT_DAY = 1461

#: last generated day (mid 2015).
END_DAY = 2000


@dataclass(frozen=True)
class StatsConfig:
    """Scale and seed knobs for the synthetic STATS database."""

    seed: int = 42
    users: int = 16_000
    badges: int = 32_000
    posts: int = 60_000
    comments: int = 100_000
    votes: int = 120_000
    post_history: int = 48_000
    post_links: int = 12_000
    tags: int = 2_400

    def scaled(self, factor: float) -> "StatsConfig":
        """A config with every table size multiplied by ``factor``."""
        return StatsConfig(
            seed=self.seed,
            users=max(10, int(self.users * factor)),
            badges=max(10, int(self.badges * factor)),
            posts=max(10, int(self.posts * factor)),
            comments=max(10, int(self.comments * factor)),
            votes=max(10, int(self.votes * factor)),
            post_history=max(10, int(self.post_history * factor)),
            post_links=max(10, int(self.post_links * factor)),
            tags=max(5, int(self.tags * factor)),
        )


def _key(name: str) -> ColumnMeta:
    return ColumnMeta(name, ColumnKind.INT, filterable=False, is_key=True)


def _attr(name: str) -> ColumnMeta:
    return ColumnMeta(name, ColumnKind.INT, filterable=True, is_key=False)


USERS = TableSchema(
    "users",
    (
        _key("Id"),
        _attr("Reputation"),
        _attr("CreationDate"),
        _attr("Views"),
        _attr("UpVotes"),
        _attr("DownVotes"),
    ),
    primary_key="Id",
)

BADGES = TableSchema(
    "badges",
    (_key("Id"), _key("UserId"), _attr("Date")),
    primary_key="Id",
)

POSTS = TableSchema(
    "posts",
    (
        _key("Id"),
        _key("OwnerUserId"),
        _attr("PostTypeId"),
        _attr("CreationDate"),
        _attr("Score"),
        _attr("ViewCount"),
        _attr("AnswerCount"),
        _attr("CommentCount"),
        _attr("FavoriteCount"),
    ),
    primary_key="Id",
)

COMMENTS = TableSchema(
    "comments",
    (
        _key("Id"),
        _key("PostId"),
        _key("UserId"),
        _attr("Score"),
        _attr("CreationDate"),
    ),
    primary_key="Id",
)

VOTES = TableSchema(
    "votes",
    (
        _key("Id"),
        _key("PostId"),
        _key("UserId"),
        _attr("VoteTypeId"),
        _attr("CreationDate"),
        _attr("BountyAmount"),
    ),
    primary_key="Id",
)

POST_HISTORY = TableSchema(
    "postHistory",
    (
        _key("Id"),
        _key("PostId"),
        _key("UserId"),
        _attr("PostHistoryTypeId"),
        _attr("CreationDate"),
    ),
    primary_key="Id",
)

POST_LINKS = TableSchema(
    "postLinks",
    (
        _key("Id"),
        _key("PostId"),
        _key("RelatedPostId"),
        _attr("LinkTypeId"),
        _attr("CreationDate"),
    ),
    primary_key="Id",
)

TAGS = TableSchema(
    "tags",
    (_key("Id"), _key("ExcerptPostId"), _attr("Count")),
    primary_key="Id",
)

ALL_SCHEMAS = (USERS, BADGES, POSTS, COMMENTS, VOTES, POST_HISTORY, POST_LINKS, TAGS)

#: Per-table column holding the row's creation time, used by the update
#: experiment's timestamp split.  ``tags`` has no timestamp in STATS.
DATE_COLUMNS = {
    "users": "CreationDate",
    "badges": "Date",
    "posts": "CreationDate",
    "comments": "CreationDate",
    "votes": "CreationDate",
    "postHistory": "CreationDate",
    "postLinks": "CreationDate",
}


def stats_join_graph() -> JoinGraph:
    """The 12 join relations of Figure 1 (11 PK-FK plus 1 FK-FK)."""
    graph = JoinGraph()
    graph.add(JoinEdge("users", "Id", "badges", "UserId", one_to_many=True))
    graph.add(JoinEdge("users", "Id", "comments", "UserId", one_to_many=True))
    graph.add(JoinEdge("users", "Id", "posts", "OwnerUserId", one_to_many=True))
    graph.add(JoinEdge("users", "Id", "postHistory", "UserId", one_to_many=True))
    graph.add(JoinEdge("users", "Id", "votes", "UserId", one_to_many=True))
    graph.add(JoinEdge("posts", "Id", "comments", "PostId", one_to_many=True))
    graph.add(JoinEdge("posts", "Id", "postHistory", "PostId", one_to_many=True))
    graph.add(JoinEdge("posts", "Id", "postLinks", "PostId", one_to_many=True))
    graph.add(JoinEdge("posts", "Id", "postLinks", "RelatedPostId", one_to_many=True))
    graph.add(JoinEdge("posts", "Id", "votes", "PostId", one_to_many=True))
    graph.add(JoinEdge("posts", "Id", "tags", "ExcerptPostId", one_to_many=True))
    graph.add(JoinEdge("badges", "UserId", "comments", "UserId", one_to_many=False))
    return graph


def build_stats(config: StatsConfig | None = None) -> Database:
    """Generate the STATS-like database deterministically from a seed."""
    config = config or StatsConfig()
    rng = np.random.default_rng(config.seed)

    users = _build_users(rng, config)
    posts = _build_posts(rng, config, users)
    badges = _build_badges(rng, config, users)
    comments = _build_comments(rng, config, users, posts)
    votes = _build_votes(rng, config, users, posts)
    post_history = _build_post_history(rng, config, users, posts)
    post_links = _build_post_links(rng, config, posts)
    tags = _build_tags(rng, config, posts)

    return Database(
        name="stats",
        tables={
            "users": users,
            "badges": badges,
            "posts": posts,
            "comments": comments,
            "votes": votes,
            "postHistory": post_history,
            "postLinks": post_links,
            "tags": tags,
        },
        join_graph=stats_join_graph(),
    )


# -- per-table builders -----------------------------------------------------


def _build_users(rng: np.random.Generator, config: StatsConfig) -> Table:
    n = config.users
    reputation = gen.zipf_ints(rng, n, domain=20_000, exponent=1.35, start=1)
    views = gen.correlated_ints(rng, reputation, domain=5_000, correlation=0.7)
    upvotes = gen.correlated_ints(rng, reputation, domain=3_000, correlation=0.6)
    downvotes = gen.correlated_ints(rng, upvotes, domain=500, correlation=0.5, exponent=1.8)
    creation = gen.skewed_dates(rng, n, 0, END_DAY - 200, recency_bias=1.2)
    return Table.from_arrays(
        USERS,
        {
            "Id": np.arange(n),
            "Reputation": reputation,
            "CreationDate": creation,
            "Views": views,
            "UpVotes": upvotes,
            "DownVotes": downvotes,
        },
    )


def _child_dates(
    rng: np.random.Generator,
    parent_dates: np.ndarray,
    promptness: float = 2.5,
) -> np.ndarray:
    """Dates at or after each parent's date (referential chronology).

    Offsets are biased towards small values (content follows its parent
    soon), which keeps the pre-2014 fraction of every table near the
    paper's "roughly 50%" split point.
    """
    headroom = np.maximum(1, END_DAY - parent_dates)
    offsets = np.floor((rng.random(len(parent_dates)) ** promptness) * headroom)
    return parent_dates + offsets.astype(np.int64)


def _build_posts(rng: np.random.Generator, config: StatsConfig, users: Table) -> Table:
    n = config.posts
    user_ids = users.column("Id").values
    reputation = users.column("Reputation").values
    owner = gen.powerlaw_fanout_keys(rng, n, user_ids, exponent=0.8, weights=reputation)
    owner_dates = users.column("CreationDate").values[owner]
    creation = _child_dates(rng, owner_dates)

    view_count = gen.zipf_ints(rng, n, domain=3_000, exponent=1.4)
    score = gen.correlated_ints(rng, view_count, domain=120, correlation=0.65) - 10
    comment_count = gen.correlated_ints(rng, view_count, domain=40, correlation=0.5, exponent=1.7)
    answer_count = gen.correlated_ints(rng, comment_count, domain=15, correlation=0.6, exponent=1.9)
    post_type = gen.zipf_ints(rng, n, domain=8, exponent=2.2, start=1)
    favorites, favorite_nulls = gen.with_nulls(
        rng, gen.zipf_ints(rng, n, domain=100, exponent=1.8), null_frac=0.6
    )

    return Table(
        schema=POSTS,
        columns={
            "Id": Column.from_values(np.arange(n)),
            "OwnerUserId": Column.from_values(owner),
            "PostTypeId": Column.from_values(post_type),
            "CreationDate": Column.from_values(creation),
            "Score": Column.from_values(score),
            "ViewCount": Column.from_values(view_count),
            "AnswerCount": Column.from_values(answer_count),
            "CommentCount": Column.from_values(comment_count),
            "FavoriteCount": Column.from_values(favorites, favorite_nulls),
        },
    )


def _build_badges(rng: np.random.Generator, config: StatsConfig, users: Table) -> Table:
    n = config.badges
    user_ids = users.column("Id").values
    reputation = users.column("Reputation").values
    user = gen.powerlaw_fanout_keys(rng, n, user_ids, exponent=0.9, weights=reputation)
    date = _child_dates(rng, users.column("CreationDate").values[user])
    return Table.from_arrays(
        BADGES,
        {"Id": np.arange(n), "UserId": user, "Date": date},
    )


def _build_comments(
    rng: np.random.Generator,
    config: StatsConfig,
    users: Table,
    posts: Table,
) -> Table:
    n = config.comments
    post_ids = posts.column("Id").values
    popularity = posts.column("ViewCount").values
    post = gen.powerlaw_fanout_keys(rng, n, post_ids, exponent=0.85, weights=popularity)
    user = gen.powerlaw_fanout_keys(
        rng,
        n,
        users.column("Id").values,
        exponent=0.9,
        weights=users.column("Reputation").values,
    )
    score = gen.zipf_ints(rng, n, domain=60, exponent=2.0)
    creation = _child_dates(rng, posts.column("CreationDate").values[post])
    return Table.from_arrays(
        COMMENTS,
        {
            "Id": np.arange(n),
            "PostId": post,
            "UserId": user,
            "Score": score,
            "CreationDate": creation,
        },
    )


def _build_votes(
    rng: np.random.Generator,
    config: StatsConfig,
    users: Table,
    posts: Table,
) -> Table:
    n = config.votes
    post_ids = posts.column("Id").values
    popularity = posts.column("Score").values
    post = gen.powerlaw_fanout_keys(rng, n, post_ids, exponent=0.85, weights=popularity)
    user, user_nulls = gen.with_nulls(
        rng,
        gen.powerlaw_fanout_keys(rng, n, users.column("Id").values, exponent=1.0),
        null_frac=0.4,
    )
    vote_type = gen.zipf_ints(rng, n, domain=15, exponent=2.0, start=1)
    bounty = 50 * gen.zipf_ints(rng, n, domain=10, exponent=1.5, start=1)
    bounty_nulls = ~np.isin(vote_type, (8, 9))
    creation = _child_dates(rng, posts.column("CreationDate").values[post])
    return Table(
        schema=VOTES,
        columns={
            "Id": Column.from_values(np.arange(n)),
            "PostId": Column.from_values(post),
            "UserId": Column.from_values(user, user_nulls),
            "VoteTypeId": Column.from_values(vote_type),
            "CreationDate": Column.from_values(creation),
            "BountyAmount": Column.from_values(bounty, bounty_nulls),
        },
    )


def _build_post_history(
    rng: np.random.Generator,
    config: StatsConfig,
    users: Table,
    posts: Table,
) -> Table:
    n = config.post_history
    post = gen.powerlaw_fanout_keys(
        rng, n, posts.column("Id").values, exponent=0.85, weights=posts.column("ViewCount").values
    )
    user = gen.powerlaw_fanout_keys(
        rng,
        n,
        users.column("Id").values,
        exponent=0.8,
        weights=users.column("Reputation").values,
    )
    history_type = gen.zipf_ints(rng, n, domain=12, exponent=1.6, start=1)
    creation = _child_dates(rng, posts.column("CreationDate").values[post])
    return Table.from_arrays(
        POST_HISTORY,
        {
            "Id": np.arange(n),
            "PostId": post,
            "UserId": user,
            "PostHistoryTypeId": history_type,
            "CreationDate": creation,
        },
    )


def _build_post_links(rng: np.random.Generator, config: StatsConfig, posts: Table) -> Table:
    n = config.post_links
    post_ids = posts.column("Id").values
    post = gen.powerlaw_fanout_keys(rng, n, post_ids, exponent=0.9)
    related = gen.powerlaw_fanout_keys(
        rng, n, post_ids, exponent=0.9, weights=posts.column("ViewCount").values
    )
    link_type = np.where(rng.random(n) < 0.85, 1, 3).astype(np.int64)
    creation = _child_dates(rng, posts.column("CreationDate").values[post])
    return Table.from_arrays(
        POST_LINKS,
        {
            "Id": np.arange(n),
            "PostId": post,
            "RelatedPostId": related,
            "LinkTypeId": link_type,
            "CreationDate": creation,
        },
    )


def _build_tags(rng: np.random.Generator, config: StatsConfig, posts: Table) -> Table:
    n = config.tags
    excerpt = rng.choice(posts.column("Id").values, size=n, replace=False)
    excerpt_nulls = rng.random(n) < 0.15
    count = gen.zipf_ints(rng, n, domain=5_000, exponent=1.3, start=1)
    return Table(
        schema=TAGS,
        columns={
            "Id": Column.from_values(np.arange(n)),
            "ExcerptPostId": Column.from_values(excerpt, excerpt_nulls),
            "Count": Column.from_values(count),
        },
    )


# -- update-experiment support ------------------------------------------------


def split_by_date(database: Database, split_day: int = SPLIT_DAY) -> tuple[Database, dict[str, Table]]:
    """Split ``database`` into a stale part and the rows inserted later.

    Rows whose creation column is strictly before ``split_day`` form
    the stale database (used to train the initial models); the rest are
    returned per table for insertion, mirroring the paper's update
    experiment.  ``tags`` has no timestamp and stays entirely in the
    stale part.
    """
    old_tables: dict[str, Table] = {}
    new_tables: dict[str, Table] = {}
    for name, table in database.tables.items():
        date_column = DATE_COLUMNS.get(name)
        if date_column is None:
            old_tables[name] = table
            new_tables[name] = table.take(np.empty(0, dtype=np.int64))
            continue
        dates = table.column(date_column).values
        old_tables[name] = table.take(np.nonzero(dates < split_day)[0])
        new_tables[name] = table.take(np.nonzero(dates >= split_day)[0])
    old_db = Database(
        name=f"{database.name}-pre{split_day}",
        tables=old_tables,
        join_graph=database.join_graph,
    )
    return old_db, new_tables
