"""Benchmark datasets.

- :mod:`repro.datasets.stats_db` — the STATS-like database (Figure 1):
  8 tables, skewed and correlated attributes, PK-FK and FK-FK joins.
- :mod:`repro.datasets.imdb_light` — the simplified-IMDB-like database:
  6 tables, star joins around a central table, mild distributions.
- :mod:`repro.datasets.describe` — the Table-1 statistics.
- :mod:`repro.datasets.generator` — skew/correlation/fan-out primitives.
"""

from repro.datasets.imdb_light import build_imdb_light
from repro.datasets.stats_db import build_stats, split_by_date

__all__ = ["build_imdb_light", "build_stats", "split_by_date"]
