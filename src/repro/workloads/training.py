"""Training workloads for the query-driven estimators.

The paper trains MSCN / LW-* / UAE-Q on 10^5 automatically generated
queries, executed to obtain true cardinalities — and points out how
expensive that is (O9).  This module generates a scaled-down training
workload and flattens it into (sub-plan query, cardinality) examples:
every executed query labels its entire sub-plan space, so a few
hundred executions yield thousands of supervised examples.

The training workload is generated independently of the hand-picked
evaluation workloads, reproducing the workload-shift setting the
paper identifies as a core weakness of query-driven methods.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.truecards import TrueCardinalityService
from repro.engine.database import Database
from repro.engine.query import Query
from repro.workloads import cache
from repro.workloads.generator import Workload, WorkloadSpec, build_workload
from repro.workloads.templates import enumerate_templates


def build_training_workload(
    database: Database,
    num_queries: int = 300,
    seed: int = 99,
    max_tables: int = 8,
    max_cardinality: int = 6_000_000,
    cache_dir: Path | None = None,
    use_cache: bool = True,
    exec_cache: bool = True,
) -> Workload:
    """A generated (not hand-picked) workload for model training."""
    key = cache.fingerprint(
        {
            "database": database.name,
            "rows": database.total_rows(),
            "checksum": cache.database_checksum(database),
            "kind": "training",
            "seed": seed,
            "num_queries": num_queries,
            "max_tables": max_tables,
            "max_cardinality": max_cardinality,
        }
    )
    path = cache.cached_path(f"training-{database.name}", key, cache_dir)
    if use_cache:
        cached = cache.load(path)
        if cached is not None:
            return cached

    templates = enumerate_templates(
        database.join_graph,
        count=max(num_queries // 5, 10),
        seed=seed,
        min_tables=2,
        max_tables=max_tables,
    )
    spec = WorkloadSpec(
        name=f"training-{database.name}",
        total_queries=num_queries,
        queries_per_template=(1, 8),
        predicates_range=(1, 10),
        min_cardinality=1,
        max_cardinality=max_cardinality,
        seed=seed,
        attempts_per_query=6,
    )
    service = TrueCardinalityService(
        database, max_intermediate_rows=16_000_000, use_exec_cache=exec_cache
    )
    workload = build_workload(database, templates, spec, service)
    if use_cache:
        cache.save(workload, path)
    return workload


def flatten_to_examples(workload: Workload) -> list[tuple[Query, int]]:
    """All (sub-plan query, true cardinality) pairs of a workload."""
    examples: list[tuple[Query, int]] = []
    for labeled in workload.queries:
        for subset, count in labeled.sub_plan_true_cards.items():
            examples.append((labeled.query.subquery(subset), count))
    return examples
