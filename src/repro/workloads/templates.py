"""Join-template enumeration (phase one of the paper's workload design).

A *join template* is a distinct acyclic join pattern: a set of tables
plus a spanning set of join edges.  The paper generates 70 templates
over STATS covering 2-8 tables, chain/star/mixed forms, and PK-FK as
well as FK-FK joins, excluding cyclic and non-equi joins.  This module
enumerates candidate templates from a schema join graph and picks a
diverse subset deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.catalog import JoinEdge, JoinGraph


@dataclass(frozen=True)
class JoinTemplate:
    """One acyclic join pattern."""

    tables: frozenset[str]
    edges: tuple[JoinEdge, ...]

    @property
    def num_tables(self) -> int:
        return len(self.tables)

    def signature(self) -> tuple:
        """Canonical identity for de-duplication."""
        return tuple(
            sorted(
                tuple(sorted(((e.left, e.left_column), (e.right, e.right_column))))
                for e in self.edges
            )
        )

    def form(self, graph: JoinGraph) -> str:
        return graph.join_form(self.tables, list(self.edges))

    @property
    def has_fk_fk(self) -> bool:
        return any(not edge.one_to_many for edge in self.edges)

    @property
    def join_type(self) -> str:
        return "PK-FK/FK-FK" if self.has_fk_fk else "PK-FK"


def random_template(
    rng: np.random.Generator,
    graph: JoinGraph,
    num_tables: int,
) -> JoinTemplate:
    """Grow one random acyclic template with ``num_tables`` tables."""
    tables = sorted(graph.tables)
    current = {tables[rng.integers(len(tables))]}
    edges: list[JoinEdge] = []
    while len(current) < num_tables:
        frontier = [
            edge
            for edge in graph.edges
            if len(edge.tables & current) == 1
        ]
        if not frontier:
            break
        edge = frontier[rng.integers(len(frontier))]
        edges.append(edge)
        current |= edge.tables
    return JoinTemplate(tables=frozenset(current), edges=tuple(edges))


def enumerate_templates(
    graph: JoinGraph,
    count: int,
    seed: int = 0,
    min_tables: int = 2,
    max_tables: int = 8,
    attempts: int = 4_000,
) -> list[JoinTemplate]:
    """Sample ``count`` distinct diverse templates deterministically.

    Sampling is stratified: table counts cycle through
    ``[min_tables, max_tables]`` so every join size is represented, and
    duplicates (same canonical edge set) are discarded.  Mirrors the
    paper's manual curation goal — "join templates are not very
    similar" and "cover a wide range of joined table counts".
    """
    rng = np.random.default_rng(seed)
    max_tables = min(max_tables, len(graph.tables))
    sizes = list(range(min_tables, max_tables + 1))
    seen: set[tuple] = set()
    result: list[JoinTemplate] = []
    for attempt in range(attempts):
        if len(result) >= count:
            break
        target = sizes[attempt % len(sizes)]
        template = random_template(rng, graph, target)
        if template.num_tables != target:
            continue
        signature = template.signature()
        if signature in seen:
            continue
        seen.add(signature)
        result.append(template)
    result.sort(key=lambda t: (t.num_tables, t.signature()))
    return result
