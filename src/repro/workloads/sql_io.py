"""Workload export/import as ``.sql`` files.

Mirrors how the paper's benchmark releases STATS-CEB: one query per
line in the benchmark SQL dialect, annotated with its true cardinality
(and, here, the full sub-plan cardinalities) in trailing comments so a
downstream system can consume the labels without re-executing.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.engine.catalog import JoinGraph
from repro.engine.query import LabeledQuery
from repro.engine.sql import parse_query, query_to_sql
from repro.workloads.generator import Workload

_CARD_MARKER = "-- true_cardinality:"
_SUBPLAN_MARKER = "-- sub_plan_cardinalities:"


def export_workload(workload: Workload, path: Path) -> None:
    """Write the workload as annotated benchmark-dialect SQL."""
    lines = [
        f"-- workload: {workload.name} ({len(workload)} queries, "
        f"database {workload.database_name})"
    ]
    for labeled in workload.queries:
        lines.append("")
        lines.append(f"-- name: {labeled.query.name}")
        lines.append(f"{_CARD_MARKER} {labeled.true_cardinality}")
        sub_plans = [
            [sorted(tables), count]
            for tables, count in sorted(
                labeled.sub_plan_true_cards.items(),
                key=lambda kv: (len(kv[0]), sorted(kv[0])),
            )
        ]
        lines.append(f"{_SUBPLAN_MARKER} {json.dumps(sub_plans)}")
        lines.append(query_to_sql(labeled.query))
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("\n".join(lines) + "\n")


def import_workload(
    path: Path,
    join_graph: JoinGraph | None = None,
    name: str = "imported",
    database_name: str = "unknown",
) -> Workload:
    """Read a workload written by :func:`export_workload`.

    Plain ``.sql`` files (queries only, no annotations) import too;
    such queries carry a true cardinality of -1 and no sub-plan labels.
    """
    workload = Workload(name=name, database_name=database_name)
    current_name = ""
    cardinality = -1
    sub_plans: dict = {}
    for raw_line in path.read_text().splitlines():
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("-- name:"):
            current_name = line.split(":", 1)[1].strip()
            continue
        if line.startswith(_CARD_MARKER):
            cardinality = int(line[len(_CARD_MARKER) :].strip())
            continue
        if line.startswith(_SUBPLAN_MARKER):
            payload = json.loads(line[len(_SUBPLAN_MARKER) :].strip())
            sub_plans = {frozenset(tables): count for tables, count in payload}
            continue
        if line.startswith("--"):
            continue
        query = parse_query(line, join_graph, name=current_name or f"q{len(workload) + 1}")
        workload.queries.append(
            LabeledQuery(
                query=query,
                true_cardinality=cardinality,
                sub_plan_true_cards=sub_plans,
            )
        )
        current_name = ""
        cardinality = -1
        sub_plans = {}
    return workload
