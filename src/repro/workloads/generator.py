"""Query generation and labelling (phase two of the workload design).

Given a join template, the generator samples filter predicates
anchored at real data rows (so predicates have real-world semantics
and non-trivial selectivities), labels each query with the exact
cardinality of its whole sub-plan query space, and accepts or rejects
it against cardinality bounds — the automated analog of the paper's
"generate and hand-pick" procedure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.truecards import TrueCardinalityService
from repro.engine.catalog import JoinGraph
from repro.engine.database import Database
from repro.engine.executor import ExecutionAborted
from repro.engine.predicates import Predicate
from repro.engine.query import LabeledQuery, Query
from repro.obs.prof import phases as prof_phases
from repro.workloads.templates import JoinTemplate


@dataclass
class Workload:
    """A named list of labelled queries over one database."""

    name: str
    database_name: str
    queries: list[LabeledQuery] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)

    def by_num_tables(self) -> dict[int, list[LabeledQuery]]:
        groups: dict[int, list[LabeledQuery]] = {}
        for labeled in self.queries:
            groups.setdefault(labeled.query.num_tables, []).append(labeled)
        return groups

    def cardinality_range(self) -> tuple[int, int]:
        cards = [labeled.true_cardinality for labeled in self.queries]
        return (min(cards), max(cards)) if cards else (0, 0)

    def subset(self, names: set[str]) -> "Workload":
        return Workload(
            name=f"{self.name}-subset",
            database_name=self.database_name,
            queries=[q for q in self.queries if q.query.name in names],
        )


@dataclass(frozen=True)
class PredicateSpec:
    """Knobs controlling predicate sampling."""

    small_domain: int = 25
    eq_probability: float = 0.25
    in_probability: float = 0.35


def sample_predicate(
    rng: np.random.Generator,
    database: Database,
    table_name: str,
    column_name: str,
    spec: PredicateSpec = PredicateSpec(),
) -> Predicate | None:
    """One predicate on ``table.column`` anchored at a random data row."""
    column = database.tables[table_name].column(column_name)
    values = column.non_null_values()
    if len(values) == 0:
        return None
    anchor = float(values[rng.integers(len(values))])
    domain = np.unique(values)

    if len(domain) <= spec.small_domain:
        roll = rng.random()
        if roll < spec.in_probability:
            extra = rng.choice(domain, size=min(len(domain), int(rng.integers(2, 5))), replace=False)
            chosen = tuple(sorted({float(v) for v in extra} | {anchor}))
            return Predicate(table_name, column_name, "in", chosen)
        return Predicate(table_name, column_name, "=", anchor)

    roll = rng.random()
    if roll < spec.eq_probability:
        return Predicate(table_name, column_name, "=", anchor)
    low, high = float(domain[0]), float(domain[-1])
    span = max(high - low, 1.0)
    # Log-uniform width: selectivities from very narrow to very wide.
    width = span * float(np.exp(rng.uniform(np.log(0.002), np.log(0.8))))
    if roll < spec.eq_probability + 0.25:
        return Predicate(table_name, column_name, "<=", anchor + width / 2)
    if roll < spec.eq_probability + 0.5:
        return Predicate(table_name, column_name, ">=", anchor - width / 2)
    return Predicate(
        table_name, column_name, "between", (anchor - width / 2, anchor + width / 2)
    )


def sample_query(
    rng: np.random.Generator,
    database: Database,
    template: JoinTemplate,
    num_predicates: int,
    name: str = "",
    spec: PredicateSpec = PredicateSpec(),
) -> Query:
    """One query on ``template`` with roughly ``num_predicates`` filters."""
    slots: list[tuple[str, str]] = []
    for table_name in sorted(template.tables):
        schema = database.tables[table_name].schema
        slots.extend((table_name, col.name) for col in schema.filterable_columns)
    rng.shuffle(slots)
    predicates: list[Predicate] = []
    for table_name, column_name in slots:
        if len(predicates) >= num_predicates:
            break
        predicate = sample_predicate(rng, database, table_name, column_name, spec)
        if predicate is not None:
            predicates.append(predicate)
    return Query(
        tables=template.tables,
        join_edges=template.edges,
        predicates=tuple(predicates),
        name=name,
    )


def label_query(
    service: TrueCardinalityService,
    query: Query,
    min_cardinality: int = 1,
    max_cardinality: int | None = None,
) -> LabeledQuery | None:
    """Label ``query`` with exact sub-plan cardinalities, or reject it.

    Returns None when the query's result falls outside the accepted
    cardinality range or when any sub-plan exceeds the execution
    budget (the workload must stay runnable end to end).
    """
    try:
        with prof_phases.phase("labelling"):
            sub_cards = service.sub_plan_cards(query)
    except ExecutionAborted:
        return None
    total = sub_cards[query.tables]
    if total < min_cardinality:
        return None
    if max_cardinality is not None and total > max_cardinality:
        return None
    return LabeledQuery(
        query=query,
        true_cardinality=total,
        sub_plan_true_cards=sub_cards,
    )


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of one generated workload."""

    name: str
    total_queries: int
    queries_per_template: tuple[int, int] = (1, 4)
    predicates_range: tuple[int, int] = (1, 16)
    min_cardinality: int = 1
    max_cardinality: int | None = None
    seed: int = 0
    attempts_per_query: int = 12


def build_workload(
    database: Database,
    templates: list[JoinTemplate],
    spec: WorkloadSpec,
    service: TrueCardinalityService | None = None,
) -> Workload:
    """Generate a labelled workload over ``templates``.

    Templates are cycled round-robin; each receives between
    ``queries_per_template`` queries until ``total_queries`` accepted
    queries exist.  Deterministic for a fixed spec and database.
    """
    rng = np.random.default_rng(spec.seed)
    service = service or TrueCardinalityService(database)
    workload = Workload(name=spec.name, database_name=database.name)

    quotas = _template_quotas(rng, len(templates), spec)
    counter = [0]
    for template, quota in zip(templates, quotas):
        _fill_template(database, template, quota, spec, service, rng, workload, counter)
        if len(workload.queries) >= spec.total_queries:
            return workload

    # Some templates (typically heavy many-to-many ones) may fail every
    # attempt; redistribute their shortfall across the others.
    for sweep in range(4):
        if len(workload.queries) >= spec.total_queries:
            break
        for template in templates:
            if len(workload.queries) >= spec.total_queries:
                break
            _fill_template(database, template, 1, spec, service, rng, workload, counter)
    return workload


def _fill_template(
    database: Database,
    template: JoinTemplate,
    quota: int,
    spec: WorkloadSpec,
    service: TrueCardinalityService,
    rng: np.random.Generator,
    workload: Workload,
    counter: list[int],
) -> None:
    produced = 0
    attempts = 0
    while produced < quota and attempts < spec.attempts_per_query * quota:
        attempts += 1
        max_preds = min(
            spec.predicates_range[1],
            sum(
                len(database.tables[t].schema.filterable_columns)
                for t in template.tables
            ),
        )
        num_predicates = int(rng.integers(spec.predicates_range[0], max_preds + 1))
        query = sample_query(
            rng,
            database,
            template,
            num_predicates,
            name=f"{spec.name}-q{counter[0] + 1}",
        )
        labeled = label_query(service, query, spec.min_cardinality, spec.max_cardinality)
        if labeled is None:
            continue
        workload.queries.append(labeled)
        produced += 1
        counter[0] += 1
        if len(workload.queries) >= spec.total_queries:
            return


def _template_quotas(
    rng: np.random.Generator,
    num_templates: int,
    spec: WorkloadSpec,
) -> list[int]:
    """Per-template query counts summing to exactly ``total_queries``.

    Every template receives at least ``queries_per_template[0]`` queries
    (so all join templates are represented in the workload) and at most
    ``queries_per_template[1]``, unless the requested total forces more.
    """
    low, high = spec.queries_per_template
    quotas = [low] * num_templates
    remaining = spec.total_queries - sum(quotas)
    while remaining > 0:
        index = int(rng.integers(num_templates))
        if quotas[index] < high or all(q >= high for q in quotas):
            quotas[index] += 1
            remaining -= 1
    return quotas
