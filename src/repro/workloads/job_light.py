"""The JOB-LIGHT analog workload.

70 labelled queries over 23 star-join templates on the simplified-IMDB
database, 2-5 joined tables and 1-4 predicates — the properties
Table 2 of the paper attributes to JOB-LIGHT.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.truecards import TrueCardinalityService
from repro.engine.database import Database
from repro.workloads import cache
from repro.workloads.generator import Workload, WorkloadSpec, build_workload
from repro.workloads.templates import enumerate_templates

NUM_QUERIES = 70
NUM_TEMPLATES = 23


def build_job_light(
    database: Database,
    seed: int = 2,
    num_queries: int = NUM_QUERIES,
    num_templates: int = NUM_TEMPLATES,
    max_cardinality: int = 4_000_000,
    min_cardinality: int = 50,
    cache_dir: Path | None = None,
    use_cache: bool = True,
    exec_cache: bool = True,
) -> Workload:
    """Build (or load from cache) the JOB-LIGHT analog workload.

    ``exec_cache`` toggles the labelling service's result-reuse caches
    (correctness-only work — counts are identical either way).
    """
    key = cache.fingerprint(
        {
            "database": database.name,
            "rows": database.total_rows(),
            "checksum": cache.database_checksum(database),
            "seed": seed,
            "num_queries": num_queries,
            "num_templates": num_templates,
            "max_cardinality": max_cardinality,
            "min_cardinality": min_cardinality,
        }
    )
    path = cache.cached_path("job-light", key, cache_dir)
    if use_cache:
        cached = cache.load(path)
        if cached is not None:
            return cached

    templates = enumerate_templates(
        database.join_graph,
        count=num_templates,
        seed=seed,
        min_tables=2,
        max_tables=5,
    )
    spec = WorkloadSpec(
        name="job-light",
        total_queries=num_queries,
        queries_per_template=(2, 4),
        predicates_range=(1, 4),
        min_cardinality=min_cardinality,
        max_cardinality=max_cardinality,
        seed=seed,
    )
    service = TrueCardinalityService(
        database, max_intermediate_rows=16_000_000, use_exec_cache=exec_cache
    )
    workload = build_workload(database, templates, spec, service)
    if use_cache:
        cache.save(workload, path)
    return workload
