"""Benchmark query workloads.

- :mod:`repro.workloads.templates` — join-template enumeration.
- :mod:`repro.workloads.generator` — predicate sampling and labelling.
- :mod:`repro.workloads.stats_ceb` — the STATS-CEB analog workload.
- :mod:`repro.workloads.job_light` — the JOB-LIGHT analog workload.
- :mod:`repro.workloads.describe` — the Table-2 statistics.
"""

from repro.workloads.generator import Workload
from repro.workloads.job_light import build_job_light
from repro.workloads.stats_ceb import build_stats_ceb
from repro.workloads.templates import JoinTemplate, enumerate_templates

__all__ = [
    "JoinTemplate",
    "Workload",
    "build_job_light",
    "build_stats_ceb",
    "enumerate_templates",
]
