"""Disk cache for labelled workloads.

Labelling a workload executes every sub-plan query exactly, which is
the most expensive step of benchmark preparation.  Since datasets and
workloads are fully deterministic in their configs, the result is
cached as JSON keyed by a config fingerprint.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.engine.catalog import JoinEdge
from repro.engine.predicates import Predicate
from repro.engine.query import LabeledQuery, Query
from repro.workloads.generator import Workload

DEFAULT_CACHE_DIR = Path(".cache") / "workloads"


def fingerprint(parts: dict) -> str:
    """Stable short hash of a config dictionary."""
    payload = json.dumps(parts, sort_keys=True).encode()
    return hashlib.sha256(payload).hexdigest()[:16]


def database_checksum(database) -> int:
    """Cheap content checksum so cached workloads invalidate when the
    data generator changes, not only when table sizes do."""
    total = 0
    for name in sorted(database.tables):
        table = database.tables[name]
        for column_name in table.schema.column_names:
            column = table.column(column_name)
            total ^= int(column.values.sum()) & 0xFFFFFFFFFFFF
            total ^= int(column.null_mask.sum()) << 1
    return total


def workload_to_dict(workload: Workload) -> dict:
    return {
        "name": workload.name,
        "database_name": workload.database_name,
        "queries": [_labeled_to_dict(labeled) for labeled in workload.queries],
    }


def workload_from_dict(payload: dict) -> Workload:
    return Workload(
        name=payload["name"],
        database_name=payload["database_name"],
        queries=[_labeled_from_dict(item) for item in payload["queries"]],
    )


def save(workload: Workload, path: Path) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(workload_to_dict(workload)))


def load(path: Path) -> Workload | None:
    if not path.exists():
        return None
    try:
        return workload_from_dict(json.loads(path.read_text()))
    except (json.JSONDecodeError, KeyError):
        return None


def cached_path(name: str, key: str, cache_dir: Path | None = None) -> Path:
    directory = cache_dir if cache_dir is not None else DEFAULT_CACHE_DIR
    return directory / f"{name}-{key}.json"


# -- serialization details -------------------------------------------------


def _labeled_to_dict(labeled: LabeledQuery) -> dict:
    return {
        "query": _query_to_dict(labeled.query),
        "true_cardinality": labeled.true_cardinality,
        "sub_plan_true_cards": [
            [sorted(tables), count]
            for tables, count in sorted(
                labeled.sub_plan_true_cards.items(),
                key=lambda kv: (len(kv[0]), sorted(kv[0])),
            )
        ],
    }


def _labeled_from_dict(payload: dict) -> LabeledQuery:
    return LabeledQuery(
        query=_query_from_dict(payload["query"]),
        true_cardinality=payload["true_cardinality"],
        sub_plan_true_cards={
            frozenset(tables): count
            for tables, count in payload["sub_plan_true_cards"]
        },
    )


def _query_to_dict(query: Query) -> dict:
    return {
        "name": query.name,
        "tables": sorted(query.tables),
        "join_edges": [
            [e.left, e.left_column, e.right, e.right_column, e.one_to_many]
            for e in query.join_edges
        ],
        "predicates": [
            [p.table, p.column, p.op, list(p.value) if isinstance(p.value, tuple) else p.value]
            for p in query.predicates
        ],
    }


def _query_from_dict(payload: dict) -> Query:
    return Query(
        tables=frozenset(payload["tables"]),
        join_edges=tuple(
            JoinEdge(left, lc, right, rc, one_to_many=otm)
            for left, lc, right, rc, otm in payload["join_edges"]
        ),
        predicates=tuple(
            Predicate(table, column, op, tuple(value) if isinstance(value, list) else value)
            for table, column, op, value in payload["predicates"]
        ),
        name=payload["name"],
    )
