"""Workload statistics behind Table 2 of the paper."""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.catalog import JoinGraph
from repro.workloads.generator import Workload
from repro.workloads.templates import JoinTemplate


@dataclass(frozen=True)
class WorkloadSummary:
    """The Table-2 row for one workload."""

    name: str
    num_queries: int
    joined_tables: tuple[int, int]
    num_templates: int
    predicates: tuple[int, int]
    join_types: str
    cardinality_range: tuple[int, int]
    join_forms: tuple[str, ...]


def describe(workload: Workload, graph: JoinGraph) -> WorkloadSummary:
    """Compute the Table-2 summary of ``workload``."""
    templates = {
        JoinTemplate(q.query.tables, q.query.join_edges).signature()
        for q in workload.queries
    }
    table_counts = [q.query.num_tables for q in workload.queries]
    predicate_counts = [q.query.num_predicates for q in workload.queries]
    has_fk_fk = any(
        not edge.one_to_many
        for q in workload.queries
        for edge in q.query.join_edges
    )
    forms = sorted(
        {
            graph.join_form(q.query.tables, list(q.query.join_edges))
            for q in workload.queries
        }
    )
    return WorkloadSummary(
        name=workload.name,
        num_queries=len(workload),
        joined_tables=(min(table_counts), max(table_counts)),
        num_templates=len(templates),
        predicates=(min(predicate_counts), max(predicate_counts)),
        join_types="PK-FK/FK-FK" if has_fk_fk else "PK-FK",
        cardinality_range=workload.cardinality_range(),
        join_forms=tuple(forms),
    )
